// Incremental analysis: a Profiler driven event by event from an unbounded
// stream, with window cuts (CutWindow) slicing mergeable PartialProfiles
// off as traffic arrives. Where Replay materializes one merged event slice
// and drives the profiler through it once, an Incremental accepts the
// merged order in arbitrarily sized pieces — whole window traces
// (FeedTrace) or single events (FeedEvent) — carrying the cross-piece
// state Replay keeps implicitly: the growable name tables, the clock, and
// the identity of the previously dispatched thread, from which it
// synthesizes the same switchThread events trace.Merge would insert. The
// continuous-profiling daemon (internal/daemon) is the primary client; the
// window-split metamorphic axis proves the equivalence to batch analysis.
package core

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/trace"
)

// incrementalEnv is the guest.Env of an incremental replay: name tables
// that grow as the stream introduces routines and syncs, and the current
// event's timestamp as the clock — exactly the contract trace.Dispatch
// documents.
type incrementalEnv struct {
	routines []string
	syncs    []string
	now      uint64
}

// RoutineName implements guest.Env.
func (e *incrementalEnv) RoutineName(r guest.RoutineID) string {
	if int(r) < len(e.routines) {
		return e.routines[r]
	}
	return fmt.Sprintf("routine#%d", int(r))
}

// SyncName implements guest.Env.
func (e *incrementalEnv) SyncName(s guest.SyncID) string {
	if int(s) < len(e.syncs) {
		return e.syncs[s]
	}
	return fmt.Sprintf("sync#%d", int(s))
}

// NumRoutines implements guest.Env.
func (e *incrementalEnv) NumRoutines() int { return len(e.routines) }

// NumSyncs implements guest.Env.
func (e *incrementalEnv) NumSyncs() int { return len(e.syncs) }

// Now implements guest.Env.
func (e *incrementalEnv) Now() uint64 { return e.now }

// Incremental analyzes an execution's merged event stream incrementally.
// Feed it events in globally increasing timestamp order — the order
// trace.Merge produces, which machine-recorded traces' globally unique
// timestamps make unambiguous — and Cut windows whenever a rolling profile
// update is wanted; merging the cuts (MergePartials) at any point yields
// exactly the batch profile of the stream so far. Not safe for concurrent
// use.
type Incremental struct {
	prof     *Profiler
	env      *incrementalEnv
	tools    []guest.Tool
	attached bool
	finished bool

	haveLast bool
	last     guest.ThreadID
}

// NewIncremental returns an incremental analyzer over a fresh Profiler
// with the given options.
func NewIncremental(opts Options) *Incremental {
	in := &Incremental{prof: New(opts), env: &incrementalEnv{}}
	in.tools = []guest.Tool{in.prof}
	return in
}

// Profiler returns the underlying profiler (for telemetry accessors such
// as Renumbers or shadow footprints). Driving it directly while feeding
// the Incremental corrupts the analysis.
func (in *Incremental) Profiler() *Profiler { return in.prof }

// ExtendTables grows the routine and sync name tables. Each argument must
// agree with the table accumulated so far on their common prefix — ids are
// meaningful only relative to the tables — and may extend it; a shorter
// argument (a re-sent prefix) is accepted unchanged. Streams deliver
// tables incrementally ('R'/'Y' blocks), window traces deliver them whole;
// both reduce to this prefix rule.
func (in *Incremental) ExtendTables(routines, syncs []string) error {
	var err error
	if in.env.routines, err = extendTable("routine", in.env.routines, routines); err != nil {
		return err
	}
	in.env.syncs, err = extendTable("sync", in.env.syncs, syncs)
	return err
}

// AppendTables appends newly interned names to the routine and sync
// tables, the form incremental v2 stream decoding delivers them in.
func (in *Incremental) AppendTables(routines, syncs []string) {
	in.env.routines = append(in.env.routines, routines...)
	in.env.syncs = append(in.env.syncs, syncs...)
}

func extendTable(what string, have, got []string) ([]string, error) {
	n := len(have)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if have[i] != got[i] {
			return nil, fmt.Errorf("core: incompatible %s tables: id %d is %q vs %q", what, i, have[i], got[i])
		}
	}
	if len(got) > len(have) {
		have = append(have, got[len(have):]...)
	}
	return have, nil
}

// FeedEvent dispatches one event of the merged stream to the profiler,
// synthesizing the switchThread event trace.Merge would insert when the
// thread changes between consecutive events. Events must arrive in the
// merged total order; windows produced by trace.SplitByTS and walked in
// sequence satisfy this by construction.
func (in *Incremental) FeedEvent(e trace.Event) error {
	if in.finished {
		return fmt.Errorf("core: FeedEvent after Finish")
	}
	if !in.attached {
		for _, tl := range in.tools {
			tl.Attach(in.env)
		}
		in.attached = true
	}
	if in.haveLast && in.last != e.Thread {
		sw := trace.Event{
			TS:     e.TS,
			Thread: in.last,
			Kind:   trace.KindSwitch,
			Arg:    uint64(uint32(e.Thread)),
		}
		in.env.now = sw.TS
		if err := trace.Dispatch(sw, in.tools); err != nil {
			return err
		}
	}
	in.env.now = e.TS
	if err := trace.Dispatch(e, in.tools); err != nil {
		return err
	}
	in.last, in.haveLast = e.Thread, true
	return nil
}

// FeedTrace feeds one window trace: its name tables extend the accumulated
// ones (prefix-checked), then its events are walked in merged order and
// fed. Feeding the windows of trace.SplitByTS in sequence replays exactly
// the full trace's merged stream.
func (in *Incremental) FeedTrace(tr *trace.Trace, tieSeed int64) error {
	if err := in.ExtendTables(tr.Routines, tr.Syncs); err != nil {
		return err
	}
	var ferr error
	trace.Walk(tr, tieSeed, func(_, _ int, e *trace.Event) {
		if ferr == nil {
			ferr = in.FeedEvent(*e)
		}
	})
	return ferr
}

// Cut slices the window accumulated since the last cut off as a
// PartialProfile (see Profiler.CutWindow); the stream continues seamlessly
// into the next window.
func (in *Incremental) Cut() *PartialProfile { return in.prof.CutWindow() }

// Finish signals the end of the stream, running the profiler's end-of-run
// bookkeeping (peak recording, deep checks, telemetry publication). It is
// idempotent; feed no further events afterwards. Finish does not cut — a
// final Cut collects whatever the last window holds.
func (in *Incremental) Finish() {
	if in.finished || !in.attached {
		in.finished = true
		return
	}
	in.finished = true
	for _, tl := range in.tools {
		tl.Finish()
	}
}
