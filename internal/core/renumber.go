package core

import (
	"sort"

	"repro/internal/guest"
	"repro/internal/shadow"
)

// renumberHeadroom is how far above the post-pass counter value the
// threshold is raised when it turns out to be too small to make progress
// (see renumber). Any positive slack works; a handful of bumps between
// passes keeps pathological-threshold tests from renumbering at literally
// every event.
const renumberHeadroom = 32

// renumber implements the paper's counter-overflow procedure (Fig. 13). It
// compacts every timestamp in the profiler's data structures — pending
// activation timestamps, per-thread shadow memories and the global write
// shadow — while preserving exactly the order relations the read/write
// timestamping algorithm consults:
//
//   - ts_t[l] vs. wts[l] for the same cell l and each thread t, and
//   - ts_t[l] vs. the timestamps of t's pending activations.
//
// Orders between timestamps of different memory cells are never compared by
// the algorithm and are free to change. Pending activations get new
// timestamps 3(rank+1) by rank of their old timestamp; a memory timestamp
// falling in the interval of activation rank q maps to base b = 3(q+1), with
// b, b+1 or b+2 selected by its relation to the cell's global write
// timestamp — the reason the paper spaces routine timestamps by multiples of
// three.
func (p *Profiler) renumber() {
	p.renumbers++

	// Invalidate every thread's redundancy filter (Options.Sampling): the
	// pass rewrites the very timestamps the filter's validity tag stands
	// for, and the compacted counter could in principle land back on a
	// stale tag value. An impossible depth forces the next batch to flush.
	for _, tv := range p.threads {
		tv.filtDepth = -1
	}

	// Collect and rank all pending activation timestamps (they are
	// distinct: the counter is bumped at every call).
	var acts []uint32
	for _, tv := range p.threads {
		for _, f := range tv.stack {
			acts = append(acts, f.ts)
		}
	}
	sort.Slice(acts, func(i, j int) bool { return acts[i] < acts[j] })

	newCount := uint32(3 * (len(acts) + 2))
	if p.threshold <= newCount {
		// A pathologically small threshold (tests use 1 or 2) cannot fit
		// even the renumbered pending activations below itself: bump would
		// trigger another pass immediately and the counter could never
		// advance. Raising the threshold is safe — renumbering preserves
		// every order relation the algorithm consults, so the threshold
		// only controls cadence, never results — and it guarantees forward
		// progress for any configured value.
		p.threshold = newCount + renumberHeadroom
	}

	var snap *renumberSnap
	if p.checks == CheckDeep {
		snap = p.snapshotRelations()
	}

	// interval returns the rank of the latest pending activation whose old
	// timestamp is <= v, or -1.
	interval := func(v uint32) int {
		lo, hi, q := 0, len(acts)-1, -1
		for lo <= hi {
			mid := (lo + hi) / 2
			if acts[mid] <= v {
				q = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		return q
	}

	// Remap per-thread shadow memories first: they need each cell's *old*
	// global write timestamp.
	for _, tv := range p.threads {
		tv.ts.RangeChunks(func(base guest.Addr, vals *[shadow.ChunkSize]uint32) {
			for off := range vals {
				v := vals[off]
				if v == 0 {
					continue
				}
				b := uint32(3 * (interval(v) + 1))
				w := uint32(p.global.Peek(base+guest.Addr(off)) >> 32)
				switch {
				case v == w:
					// The thread wrote the cell last.
					vals[off] = b + 1
				case v < w:
					// Another writer intervened after the thread's
					// access; preserve ts_t < wts. When v predates
					// every pending activation, b is 0: the cell
					// reads as never-accessed, which triggers the
					// same induced-first-access outcome.
					vals[off] = b
				default:
					// The thread accessed the cell after its last
					// write (or it was never written).
					vals[off] = b + 2
				}
			}
		})
	}

	// Remap the global write shadow: the write timestamp of a cell in
	// activation interval q becomes 3(q+1)+1, keeping provenance bits.
	p.global.RangeChunks(func(base guest.Addr, vals *[shadow.ChunkSize]uint64) {
		for off := range vals {
			g := vals[off]
			v := uint32(g >> 32)
			if v == 0 {
				continue
			}
			nv := uint64(3*(interval(v)+1) + 1)
			vals[off] = nv<<32 | g&0xFFFFFFFF
		}
	})

	// Remap pending activation timestamps by rank.
	for _, tv := range p.threads {
		for i := range tv.stack {
			r := interval(tv.stack[i].ts) // exact rank: frame timestamps are in acts
			tv.stack[i].ts = uint32(3 * (r + 1))
		}
	}

	p.count = newCount
	if snap != nil {
		p.verifyRenumber(snap, newCount)
	}
}
