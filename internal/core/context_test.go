package core

import (
	"testing"

	"repro/internal/guest"
)

// contextRun profiles a program that calls the same helper from two
// different callers with different input sizes.
func contextRun(t *testing.T) *Profiler {
	t.Helper()
	p := New(Options{ContextSensitive: true})
	m := guest.NewMachine(guest.Config{Tools: []guest.Tool{p}})
	small := m.Static(4)
	big := m.Static(64)
	err := m.Run(func(th *guest.Thread) {
		sum := func(base guest.Addr, n int) {
			th.Fn("sum", func() {
				for i := 0; i < n; i++ {
					th.Load(base + guest.Addr(i))
				}
			})
		}
		th.Fn("lookup", func() {
			sum(small, 4)
		})
		th.Fn("fullScan", func() {
			for r := 0; r < 3; r++ {
				sum(big, 64)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestContextSeparatesCallers(t *testing.T) {
	p := contextRun(t)
	tree := p.ContextTree()
	if tree == nil {
		t.Fatal("no context tree despite ContextSensitive")
	}

	viaLookup := tree.Find("lookup", "sum")
	viaScan := tree.Find("fullScan", "sum")
	if viaLookup == nil || viaScan == nil {
		var paths []string
		tree.Walk(func(n *ContextNode) { paths = append(paths, n.Path()) })
		t.Fatalf("missing contexts; have %v", paths)
	}
	l, s := viaLookup.Merged(), viaScan.Merged()
	if l.Calls != 1 || l.SumTRMS != 4 {
		t.Errorf("lookup>sum: calls=%d trms=%d, want 1, 4", l.Calls, l.SumTRMS)
	}
	if s.Calls != 3 || s.SumTRMS != 3*64 {
		t.Errorf("fullScan>sum: calls=%d trms=%d, want 3, 192", s.Calls, s.SumTRMS)
	}
	if viaLookup.Depth() != 2 || viaScan.Path() != "fullScan > sum" {
		t.Errorf("path/depth wrong: %q depth %d", viaScan.Path(), viaLookup.Depth())
	}
	if got := tree.NumContexts(); got != 4 {
		t.Errorf("NumContexts = %d, want 4 (lookup, fullScan, and sum under each)", got)
	}
}

// TestContextFlattenMatchesFlatProfile checks the consistency bridge: per
// routine, the CCT aggregates must sum to the flat profile's aggregates.
func TestContextFlattenMatchesFlatProfile(t *testing.T) {
	p := contextRun(t)
	flat := p.Profile()
	folded := p.ContextTree().FlattenByRoutine()
	for _, name := range flat.RoutineNames() {
		want := flat.Routines[name].Merged()
		got := folded[name]
		if got == nil {
			t.Errorf("routine %s missing from folded tree", name)
			continue
		}
		if got.Calls != want.Calls || got.SumCost != want.SumCost ||
			got.SumTRMS != want.SumTRMS || got.SumRMS != want.SumRMS {
			t.Errorf("%s: folded (calls=%d cost=%d trms=%d rms=%d) != flat (calls=%d cost=%d trms=%d rms=%d)",
				name, got.Calls, got.SumCost, got.SumTRMS, got.SumRMS,
				want.Calls, want.SumCost, want.SumTRMS, want.SumRMS)
		}
	}
}

// TestContextTreeMultithreaded checks that contexts are tracked per thread
// and recursion extends the context chain.
func TestContextTreeMultithreaded(t *testing.T) {
	p := New(Options{ContextSensitive: true})
	m := guest.NewMachine(guest.Config{Timeslice: 3, Tools: []guest.Tool{p}})
	data := m.Static(32)
	err := m.Run(func(th *guest.Thread) {
		var kids []*guest.Thread
		for w := 0; w < 2; w++ {
			kids = append(kids, th.Spawn("w", func(c *guest.Thread) {
				var rec func(d int)
				rec = func(d int) {
					c.Fn("rec", func() {
						c.Load(data + guest.Addr(d))
						if d < 3 {
							rec(d + 1)
						}
					})
				}
				c.Fn("work", func() { rec(0) })
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := p.ContextTree()
	deepest := tree.Find("work", "rec", "rec", "rec", "rec")
	if deepest == nil {
		t.Fatal("recursive context chain not built")
	}
	if got := len(deepest.PerThread); got != 2 {
		t.Errorf("deepest context seen by %d threads, want 2", got)
	}
	if deepest.Depth() != 5 {
		t.Errorf("depth = %d, want 5", deepest.Depth())
	}
	if parent := deepest.Parent(); parent == nil || parent.Routine != "rec" {
		t.Errorf("parent = %v", parent)
	}
}

func TestContextTreeNilWithoutOption(t *testing.T) {
	p := New(Options{})
	if p.ContextTree() != nil {
		t.Error("ContextTree non-nil without ContextSensitive")
	}
}

func TestContextFindMisses(t *testing.T) {
	p := contextRun(t)
	tree := p.ContextTree()
	if tree.Find("nonexistent") != nil {
		t.Error("Find returned a node for a bogus path")
	}
	if tree.Find() != nil {
		t.Error("empty Find did not return nil")
	}
}
