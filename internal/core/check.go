package core

import (
	"fmt"

	"repro/internal/guest"
)

// CheckLevel selects how much paper-derived invariant checking the profiler
// performs while it runs. The levels are cumulative.
type CheckLevel uint8

// The three checking levels. CheckOff (the zero value) performs no checks.
// CheckCheap validates every completed activation's metrics (rms >= 0,
// trms >= rms, trms <= rms + induced input) and the monotonicity and bound
// of activation timestamps — O(1) work per call/return, nothing on the
// per-memory-event path. CheckDeep additionally verifies each renumbering
// pass preserves the order relations of Fig. 13 (by snapshotting every
// shadow cell's relations before the pass and re-deriving them after) and
// scans the shadow memories at Finish for out-of-range timestamps and
// missing writer provenance.
const (
	CheckOff CheckLevel = iota
	CheckCheap
	CheckDeep
)

// String returns the level's flag spelling: off, cheap or deep.
func (l CheckLevel) String() string {
	switch l {
	case CheckOff:
		return "off"
	case CheckCheap:
		return "cheap"
	case CheckDeep:
		return "deep"
	}
	return fmt.Sprintf("CheckLevel(%d)", uint8(l))
}

// ParseCheckLevel parses the flag spellings accepted by String.
func ParseCheckLevel(s string) (CheckLevel, error) {
	switch s {
	case "off", "":
		return CheckOff, nil
	case "cheap":
		return CheckCheap, nil
	case "deep":
		return CheckDeep, nil
	}
	return CheckOff, fmt.Errorf("unknown check level %q (want off, cheap or deep)", s)
}

// Violation describes one detected invariant violation. Check is a stable
// slash-separated identifier (e.g. "activation/trms-ge-rms"); Detail is a
// human-readable account of the observed values.
type Violation struct {
	// Check identifies the violated invariant.
	Check string
	// Thread is the guest thread the violation was observed on (zero when
	// the violation is not thread-specific).
	Thread guest.ThreadID
	// Routine names the routine involved, when one is.
	Routine string
	// Detail describes the observed values.
	Detail string
}

// String formats the violation on one line.
func (v Violation) String() string {
	s := "invariant " + v.Check
	if v.Routine != "" {
		s += " routine=" + v.Routine
	}
	s += fmt.Sprintf(" thread=%d: %s", v.Thread, v.Detail)
	return s
}

// maxRecordedViolations bounds how many violations are stored or delivered;
// a systemically broken run would otherwise flood memory (or the
// OnViolation callback) with millions of identical reports. The total count
// keeps accumulating past the cap.
const maxRecordedViolations = 100

// Violations returns the violations recorded so far (at most
// maxRecordedViolations; see ViolationCount for the total). Nil when
// Options.OnViolation was set, since violations are delivered instead.
func (p *Profiler) Violations() []Violation { return p.violations }

// ViolationCount returns the total number of violations detected, including
// any dropped past the recording cap.
func (p *Profiler) ViolationCount() uint64 { return p.violCount }

// violatef records (or delivers) one invariant violation.
func (p *Profiler) violatef(check string, t guest.ThreadID, routine, format string, args ...any) {
	p.violCount++
	if p.violCount > maxRecordedViolations {
		return
	}
	v := Violation{Check: check, Thread: t, Routine: routine, Detail: fmt.Sprintf(format, args...)}
	if p.opts.OnViolation != nil {
		p.opts.OnViolation(v)
		return
	}
	p.violations = append(p.violations, v)
}

// routineName resolves r for violation reports, tolerating a nil env
// (hand-built event streams need not Attach).
func (p *Profiler) routineName(r guest.RoutineID) string {
	if p.env == nil {
		return fmt.Sprintf("routine#%d", r)
	}
	return p.env.RoutineName(r)
}

// checkCall validates the frame just pushed: activation timestamps must
// strictly increase up the stack (the property findFrame's binary search
// and the ancestor-adjustment rule rely on) and stay within the counter
// bound.
func (p *Profiler) checkCall(tv *threadView) {
	n := len(tv.stack)
	f := &tv.stack[n-1]
	if f.ts == 0 || f.ts > p.count {
		p.violatef("counter/bound", tv.id, p.routineName(f.rtn),
			"activation timestamp %d outside (0, count=%d]", f.ts, p.count)
	}
	if n > 1 && tv.stack[n-2].ts >= f.ts {
		p.violatef("counter/monotone", tv.id, p.routineName(f.rtn),
			"activation timestamp %d not above parent's %d", f.ts, tv.stack[n-2].ts)
	}
}

// checkReturn validates a completed activation's final metrics before they
// fold into the parent. At return time the frame is the top of the stack,
// so by Invariant 2 its partial values are the activation's totals: the
// paper's Definition 1 makes rms a set cardinality (never negative), trms
// extends rms by induced first-accesses only (trms >= rms), and every unit
// of trms beyond rms must be accounted for by a recorded induced
// first-access of the activation's subtree.
func (p *Profiler) checkReturn(tv *threadView, f *frame) {
	name := ""
	if f.rms < 0 || f.trms < f.rms || f.trms > f.rms+int64(f.inducedThread)+int64(f.inducedExternal) {
		name = p.routineName(f.rtn)
	} else {
		return
	}
	if f.rms < 0 {
		p.violatef("activation/rms-nonneg", tv.id, name, "final rms = %d", f.rms)
	}
	if f.trms < f.rms {
		p.violatef("activation/trms-ge-rms", tv.id, name, "trms = %d < rms = %d", f.trms, f.rms)
	}
	if f.trms > f.rms+int64(f.inducedThread)+int64(f.inducedExternal) {
		p.violatef("activation/trms-bound", tv.id, name,
			"trms = %d exceeds rms = %d + induced %d+%d", f.trms, f.rms, f.inducedThread, f.inducedExternal)
	}
}

// checkFinish is the CheckDeep end-of-run shadow-memory scan: every
// thread-local access timestamp and every global write timestamp must lie
// within the current counter value, and every written cell must carry
// writer provenance (the induced-input split depends on it).
func (p *Profiler) checkFinish() {
	for _, tv := range p.threads {
		if tv.ts == nil {
			continue
		}
		id := tv.id
		tv.ts.Range(func(a guest.Addr, v uint32) {
			if v > p.count {
				p.violatef("shadow/ts-bound", id, "",
					"cell %#x thread timestamp %d exceeds counter %d", uint64(a), v, p.count)
			}
		})
	}
	p.global.Range(func(a guest.Addr, g uint64) {
		wts := uint32(g >> 32)
		writer := uint32(g)
		if wts > p.count {
			p.violatef("shadow/wts-bound", 0, "",
				"cell %#x write timestamp %d exceeds counter %d", uint64(a), wts, p.count)
		}
		if wts != 0 && writer == 0 {
			p.violatef("shadow/writer-missing", 0, "",
				"cell %#x write timestamp %d carries no writer provenance", uint64(a), wts)
		}
	})
}

// cellRel is a deep-check snapshot of the order relations one thread-shadow
// cell participates in: its sign relative to the cell's global write
// timestamp and the rank of the pending activation interval it falls in.
// These are exactly (and only) the relations the read algorithm consults,
// so renumbering must preserve them.
type cellRel struct {
	addr guest.Addr
	rel  int8  // -1: ts < wts, 0: ts == wts, +1: ts > wts
	rank int32 // findFrame(stack, ts)
}

// threadRelSnap holds one thread's pre-renumbering cell relations.
type threadRelSnap struct {
	tv    *threadView
	cells []cellRel
}

// globalCellSnap records a written cell's provenance before renumbering;
// Fig. 13 rewrites timestamps only, so provenance must survive unchanged.
type globalCellSnap struct {
	addr   guest.Addr
	writer uint32
}

// renumberSnap is the full pre-renumbering relation snapshot.
type renumberSnap struct {
	threads []threadRelSnap
	global  []globalCellSnap
}

func cmpTS(v, w uint32) int8 {
	switch {
	case v < w:
		return -1
	case v > w:
		return 1
	}
	return 0
}

// snapshotRelations captures every order relation renumbering must
// preserve. Called (under CheckDeep) before the remapping begins.
func (p *Profiler) snapshotRelations() *renumberSnap {
	snap := &renumberSnap{}
	for _, tv := range p.threads {
		ts := threadRelSnap{tv: tv}
		ts.cells = make([]cellRel, 0, tv.ts.NonZero())
		stack := tv.stack
		tv.ts.Range(func(a guest.Addr, v uint32) {
			w := uint32(p.global.Peek(a) >> 32)
			ts.cells = append(ts.cells, cellRel{
				addr: a,
				rel:  cmpTS(v, w),
				rank: int32(findFrame(stack, v)),
			})
		})
		snap.threads = append(snap.threads, ts)
	}
	snap.global = make([]globalCellSnap, 0, p.global.NonZero())
	p.global.Range(func(a guest.Addr, g uint64) {
		snap.global = append(snap.global, globalCellSnap{addr: a, writer: uint32(g)})
	})
	return snap
}

// verifyRenumber re-derives every snapshotted relation from the remapped
// shadow memories and stacks and reports any that changed. One equivalence
// is deliberate: a cell whose old timestamp both predated every pending
// activation (rank -1) and was below the cell's write timestamp collapses
// to 0 — it then reads as never-accessed, which triggers the same
// induced-first-access outcome as ts < wts with rank -1, so the collapse
// preserves the algorithm's behavior even though the stored value hits the
// zero sentinel.
func (p *Profiler) verifyRenumber(snap *renumberSnap, newCount uint32) {
	for _, ts := range snap.threads {
		tv := ts.tv
		for i := 1; i < len(tv.stack); i++ {
			if tv.stack[i-1].ts >= tv.stack[i].ts {
				p.violatef("renumber/order", tv.id, p.routineName(tv.stack[i].rtn),
					"remapped frame timestamps not increasing: %d then %d",
					tv.stack[i-1].ts, tv.stack[i].ts)
			}
		}
		for _, c := range ts.cells {
			nv := tv.ts.Peek(c.addr)
			nw := uint32(p.global.Peek(c.addr) >> 32)
			if nv >= newCount {
				p.violatef("renumber/bound", tv.id, "",
					"cell %#x remapped timestamp %d >= new counter %d", uint64(c.addr), nv, newCount)
			}
			if nv == 0 {
				if c.rel != -1 || c.rank != -1 {
					p.violatef("renumber/order", tv.id, "",
						"cell %#x collapsed to 0 but had rel=%d rank=%d", uint64(c.addr), c.rel, c.rank)
				} else if nw == 0 {
					p.violatef("renumber/order", tv.id, "",
						"cell %#x collapsed to 0 but its write timestamp vanished", uint64(c.addr))
				}
				continue
			}
			if got := cmpTS(nv, nw); got != c.rel {
				p.violatef("renumber/order", tv.id, "",
					"cell %#x ts-vs-wts relation changed: was %d, now %d (ts=%d wts=%d)",
					uint64(c.addr), c.rel, got, nv, nw)
			}
			if got := int32(findFrame(tv.stack, nv)); got != c.rank {
				p.violatef("renumber/order", tv.id, "",
					"cell %#x activation rank changed: was %d, now %d (ts=%d)",
					uint64(c.addr), c.rank, got, nv)
			}
		}
	}
	for _, g := range snap.global {
		ng := p.global.Peek(g.addr)
		nwts := uint32(ng >> 32)
		if uint32(ng) != g.writer {
			p.violatef("renumber/writer", 0, "",
				"cell %#x writer provenance changed: was %d, now %d", uint64(g.addr), g.writer, uint32(ng))
		}
		if nwts == 0 || nwts >= newCount {
			p.violatef("renumber/bound", 0, "",
				"cell %#x remapped write timestamp %d outside (0, %d)", uint64(g.addr), nwts, newCount)
		}
	}
}
