package core

import (
	"repro/internal/guest"
)

// Naive computes trms and rms with the paper's simple-minded approach
// (Fig. 10): explicit per-activation sets of accessed memory cells, updated
// by walking the whole shadow stack on every access, plus per-thread
// last-access books for recognizing induced first-accesses. It is
// asymptotically worse than Profiler in both time (stack walking, cross-
// thread invalidation) and space (a cell may live in every pending
// activation's set of every thread), and exists as the executable
// specification the timestamping algorithm is differentially tested and
// benchmarked against.
type Naive struct {
	opts Options
	env  guest.Env

	threads map[guest.ThreadID]*naiveThread

	// lastWriter records, per cell, who wrote it last: 0 none, thread
	// id + 1, or kernelWriter.
	lastWriter map[guest.Addr]uint32

	profile *Profile
}

type naiveThread struct {
	stack []naiveFrame

	// accessed records the cells this thread has read or written since
	// the last foreign write to them — the set-based counterpart of the
	// ts_t[l] >= wts[l] relation.
	accessed map[guest.Addr]bool
}

type naiveFrame struct {
	rtn     guest.RoutineID
	bbEnter uint64

	// seen is the activation's L set restricted to its own subtree's
	// accesses: the first-access test for both metrics.
	seen map[guest.Addr]bool

	trms            int64
	rms             int64
	inducedThread   uint64
	inducedExternal uint64
}

// NewNaive returns the reference profiler.
func NewNaive(opts Options) *Naive {
	return &Naive{
		opts:       opts,
		threads:    make(map[guest.ThreadID]*naiveThread),
		lastWriter: make(map[guest.Addr]uint32),
		profile:    newProfile(),
	}
}

// Profile returns the collected profile.
func (n *Naive) Profile() *Profile { return n.profile }

func (n *Naive) view(t guest.ThreadID) *naiveThread {
	tv := n.threads[t]
	if tv == nil {
		tv = &naiveThread{accessed: make(map[guest.Addr]bool)}
		n.threads[t] = tv
	}
	return tv
}

// Attach implements guest.Tool.
func (n *Naive) Attach(env guest.Env) { n.env = env }

// ThreadStart implements guest.Tool.
func (n *Naive) ThreadStart(t, parent guest.ThreadID) { n.view(t) }

// ThreadExit implements guest.Tool.
func (n *Naive) ThreadExit(t guest.ThreadID) { delete(n.threads, t) }

// SwitchThread implements guest.Tool (the naive algorithm needs no clock).
func (n *Naive) SwitchThread(from, to guest.ThreadID) {}

// Call implements guest.Tool.
func (n *Naive) Call(t guest.ThreadID, r guest.RoutineID, bb uint64) {
	tv := n.view(t)
	tv.stack = append(tv.stack, naiveFrame{rtn: r, bbEnter: bb, seen: make(map[guest.Addr]bool)})
}

// Return implements guest.Tool.
func (n *Naive) Return(t guest.ThreadID, r guest.RoutineID, bb uint64) {
	tv := n.view(t)
	if len(tv.stack) == 0 {
		return
	}
	f := tv.stack[len(tv.stack)-1]
	tv.stack = tv.stack[:len(tv.stack)-1]

	name := n.env.RoutineName(f.rtn)
	n.profile.record(name, t, frame{
		rtn:             f.rtn,
		trms:            f.trms,
		rms:             f.rms,
		inducedThread:   f.inducedThread,
		inducedExternal: f.inducedExternal,
	}, bb-f.bbEnter)

	// A completed subtree's accesses belong to the parent's subtree; its
	// metrics were counted per-frame already.
	if len(tv.stack) > 0 {
		parent := &tv.stack[len(tv.stack)-1]
		for a := range f.seen {
			parent.seen[a] = true
		}
	}
}

// Read implements guest.Tool: every pending activation of the reading thread
// is updated by direct stack walking.
func (n *Naive) Read(t guest.ThreadID, a guest.Addr) {
	tv := n.view(t)

	w := n.lastWriter[a]
	foreign := w != 0 && w != uint32(t)+1
	induced := foreign && n.inducedEnabled(w) && !tv.accessed[a]

	if induced && len(tv.stack) > 0 {
		if w == kernelWriter {
			n.profile.InducedExternal++
		} else {
			n.profile.InducedThread++
		}
	}
	for i := range tv.stack {
		f := &tv.stack[i]
		if induced {
			// New input for every pending activation: none of them
			// accessed the cell since the foreign write.
			f.trms++
			if w == kernelWriter {
				f.inducedExternal++
			} else {
				f.inducedThread++
			}
		} else if !f.seen[a] {
			f.trms++
		}
		if !f.seen[a] {
			f.rms++
		}
		f.seen[a] = true
	}
	tv.accessed[a] = true
}

// Write implements guest.Tool: the cell joins every pending activation's set
// for the writing thread and is invalidated for every other thread.
func (n *Naive) Write(t guest.ThreadID, a guest.Addr) {
	tv := n.view(t)
	for i := range tv.stack {
		tv.stack[i].seen[a] = true
	}
	tv.accessed[a] = true
	for id, other := range n.threads {
		if id != t {
			delete(other.accessed, a)
		}
	}
	n.lastWriter[a] = uint32(t) + 1
}

// KernelRead implements guest.Tool (treated as a read by the thread).
func (n *Naive) KernelRead(t guest.ThreadID, a guest.Addr) { n.Read(t, a) }

// KernelWrite implements guest.Tool: the kernel invalidates the cell for
// every thread, including the requester.
func (n *Naive) KernelWrite(t guest.ThreadID, a guest.Addr) {
	for _, tv := range n.threads {
		delete(tv.accessed, a)
	}
	n.lastWriter[a] = kernelWriter
}

// Sync implements guest.Tool (no-op).
func (n *Naive) Sync(guest.ThreadID, guest.SyncKind, guest.SyncID) {}

// Alloc implements guest.Tool (no-op).
func (n *Naive) Alloc(guest.ThreadID, guest.Addr, int) {}

// Free implements guest.Tool (no-op).
func (n *Naive) Free(guest.ThreadID, guest.Addr, int) {}

// Finish implements guest.Tool.
func (n *Naive) Finish() {}

func (n *Naive) inducedEnabled(writer uint32) bool {
	if writer == kernelWriter {
		return !n.opts.DisableExternal
	}
	return !n.opts.DisableThreadInduced
}
