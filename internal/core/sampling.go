// Adaptive instrumentation: the Options.Sampling tiers. The exact profiler
// pays a shadow-memory probe for every memory access even when the access is
// provably a no-op — the paper's first-access semantics make any repeat read
// of a cell the thread already stamped at the current counter value pure
// overhead (see the early exit in readAt). The suppress tier removes that
// probe with a small per-thread recently-read-cell filter and changes no
// profile byte. The burst tier goes further and trades accuracy for speed:
// once a routine has been observed SamplingHotThreshold times, most of its
// later activations run with shadow instrumentation disabled entirely, with
// periodic full-instrumentation bursts keeping the cost curves populated.
// Sampled-out activations are still counted (Calls and SumCost stay exact;
// observers cannot change what the guest executes) but contribute no metric
// or histogram data, and the profile records them per (routine, thread) in
// Activations.SampledOut so reports can mark sampled routines and bound the
// error instead of trusting the counts.
package core

import (
	"fmt"

	"repro/internal/guest"
	"repro/internal/shadow"
	"repro/internal/telemetry"
)

// SamplingTier selects the adaptive-instrumentation tier (Options.Sampling).
type SamplingTier uint8

// The three sampling tiers. SamplingOff (the zero value) runs the exact
// profiler. SamplingSuppress adds the per-thread redundancy filter: same-cell
// re-reads within one counter quantum skip the shadow probe. It is provably
// profile-identical to SamplingOff — a filter hit implies the thread's shadow
// timestamp for the cell already equals the current counter value, which is
// exactly the condition under which the exact read path is a complete no-op.
// SamplingBurst additionally samples hot routines: after a routine's first
// SamplingHotThreshold activations (which always run fully instrumented),
// only SamplingBurstLen out of every SamplingInterval activations are
// measured; the rest execute with no shadow updates at all and are recorded
// as sampled-out. Kernel writes stay exact in every tier — external-input
// provenance is global state other threads' measurements depend on.
const (
	SamplingOff SamplingTier = iota
	SamplingSuppress
	SamplingBurst
)

// String returns the tier's flag spelling: off, suppress or burst.
func (s SamplingTier) String() string {
	switch s {
	case SamplingOff:
		return "off"
	case SamplingSuppress:
		return "suppress"
	case SamplingBurst:
		return "burst"
	}
	return fmt.Sprintf("SamplingTier(%d)", uint8(s))
}

// ParseSamplingTier parses the flag spellings accepted by String.
func ParseSamplingTier(s string) (SamplingTier, error) {
	switch s {
	case "off", "":
		return SamplingOff, nil
	case "suppress":
		return SamplingSuppress, nil
	case "burst":
		return SamplingBurst, nil
	}
	return SamplingOff, fmt.Errorf("unknown sampling tier %q (want off, suppress or burst)", s)
}

// Burst-sampling schedule. A routine's first SamplingHotThreshold activations
// are always fully measured: rare routines stay exact, and every routine
// seeds its cost curves with exact points before sampling starts. Past the
// threshold the schedule cycles: the first SamplingBurstLen activations of
// each SamplingInterval-long window are measured (a burst), the remaining
// ones are sampled out. The threshold sits far below the activation counts
// of the hot loops (mysqld's buf_pool_fetch runs ~1.7k activations at the
// default size; the OMP2012 kernels' inner routines run hundreds) but above
// the whole-run call counts of the small PARSEC models (dedup peaks at one
// call per routine), so at default workload sizes only genuinely hot
// routines are ever sampled.
const (
	// SamplingHotThreshold is the per-routine activation count after which
	// burst sampling engages.
	SamplingHotThreshold = 12
	// SamplingInterval is the length of one sampling window, in activations
	// of the hot routine.
	SamplingInterval = 32
	// SamplingBurstLen is how many activations at the start of each window
	// are fully measured.
	SamplingBurstLen = 2
)

// readFilterSize is the number of slots in the per-thread recently-read-cell
// filter: a direct-mapped array small enough to live in cache next to the
// shadow cursor. Must be a power of two.
const readFilterSize = 16

// readFilterMask indexes the filter by the cell address's low bits.
const readFilterMask = readFilterSize - 1

// samplingStats tallies the sampling tier's work in plain fields on the hot
// path (no atomics, no registry traffic); publishSampling pushes them to the
// telemetry registry once, at Finish.
type samplingStats struct {
	suppressed    uint64 // reads answered by the redundancy filter
	skippedEvents uint64 // memory events dropped inside sampled-out subtrees
	burstWindows  uint64 // full-instrumentation bursts started on hot routines
	sampledOut    uint64 // activations recorded without measurement
}

// burstCall advances routine r's activation count and decides whether the
// activation just pushed starts a sampled-out subtree. Counting is exact even
// inside a subtree that is already sampled out — Calls must match the exact
// profiler — but a new skip window only starts at top level: nested
// activations inherit the enclosing skip.
func (p *Profiler) burstCall(tv *threadView, r guest.RoutineID) {
	ri := int(r)
	for len(p.rtnCalls) <= ri {
		p.rtnCalls = append(p.rtnCalls, 0)
	}
	c := p.rtnCalls[ri]
	p.rtnCalls[ri] = c + 1
	if tv.skipRoot != 0 || c < SamplingHotThreshold {
		return
	}
	phase := (c - SamplingHotThreshold) % SamplingInterval
	if phase == 0 {
		p.sstats.burstWindows++
	}
	if phase >= SamplingBurstLen {
		// Sample this activation out: the whole subtree runs without
		// shadow updates until the matching return pops this frame.
		tv.skipRoot = int32(len(tv.stack))
	}
}

// memBatchFiltered is MemBatch's loop for the suppress and burst tiers when
// the current subtree is being measured. It is the exact trms loop of
// MemBatch with the redundancy filter spliced in: each filter slot holds
// addr+1 of a cell this thread read since the counter and stack depth last
// changed (0 = empty). A hit proves the thread's shadow timestamp for the
// cell equals the current counter value — the exact path's repeat-access
// no-op — so the shadow probe is skipped outright. The tags are checked once
// per batch: calls, returns, thread switches and kernel writes all either
// bump the counter or change the stack depth, so stale entries can never
// survive into a quantum where they would lie. Plain writes clear their slot
// (one store); kernel writes move the counter and flush the whole filter.
func (p *Profiler) memBatchFiltered(t guest.ThreadID, tv *threadView, events []guest.MemEvent) {
	cnt := p.count
	tsc := &tv.tsc
	gc := &p.gcur

	var top *frame
	var topTS uint32
	if n := len(tv.stack); n > 0 {
		top = &tv.stack[n-1]
		topTS = top.ts
	}

	if depth := int32(len(tv.stack)); tv.filtCnt != cnt || tv.filtDepth != depth {
		tv.filt = [readFilterSize]guest.Addr{}
		tv.filtCnt = cnt
		tv.filtDepth = depth
	}

	prov := uint64(cnt)<<32 | uint64(uint32(t)+1)
	thrInduced := !p.opts.DisableThreadInduced
	extInduced := !p.opts.DisableExternal
	var suppressed uint64

	for _, e := range events {
		a := e.Addr()
		if e.IsWrite() {
			if e.IsKernel() {
				// Kernel write: exactly as in MemBatch, plus a filter
				// flush — the counter moved, so every entry is stale.
				if cnt >= p.threshold {
					p.renumber()
					cnt = p.count
					if top != nil {
						topTS = top.ts
					}
				}
				cnt++
				p.count = cnt
				gc.Chunk(a)[a&(shadow.ChunkSize-1)] = uint64(cnt)<<32 | uint64(kernelWriter)
				prov = uint64(cnt)<<32 | uint64(uint32(t)+1)
				tv.filt = [readFilterSize]guest.Addr{}
				tv.filtCnt = cnt
				continue
			}
			tsc.Chunk(a)[a&(shadow.ChunkSize-1)] = cnt
			gc.Chunk(a)[a&(shadow.ChunkSize-1)] = prov
			tv.filt[a&readFilterMask] = 0
			continue
		}
		slot := &tv.filt[a&readFilterMask]
		if *slot == a+1 {
			suppressed++
			continue
		}
		ch := tsc.Chunk(a)
		old := ch[a&(shadow.ChunkSize-1)]
		if old == cnt {
			*slot = a + 1
			continue // repeat access: no-op, see readAt
		}
		if top != nil {
			g := gc.Peek(a)
			wts := uint32(g >> 32)
			j := notSearched

			induced := false
			if old < wts {
				if uint32(g) == kernelWriter {
					induced = extInduced
				} else {
					induced = thrInduced
				}
			}
			if induced {
				top.trms++
				if uint32(g) == kernelWriter {
					top.inducedExternal++
					p.inducedExternal++
				} else {
					top.inducedThread++
					p.inducedThread++
				}
			} else if old == 0 {
				top.trms++
			} else if old < topTS {
				top.trms++
				j = findFrame(tv.stack, old)
				if j >= 0 {
					tv.stack[j].trms--
				}
			}

			if old == 0 {
				top.rms++
			} else if old < topTS {
				top.rms++
				if j == notSearched {
					j = findFrame(tv.stack, old)
				}
				if j >= 0 {
					tv.stack[j].rms--
				}
			}
		}
		ch[a&(shadow.ChunkSize-1)] = cnt
		*slot = a + 1
	}
	p.sstats.suppressed += suppressed
}

// memBatchSkip consumes a batch inside a sampled-out subtree: every thread
// read and write is dropped — no shadow probe, no stamp — while kernel
// writes stay exact (counter bump plus global stamp with kernel provenance),
// because external-input provenance is global state that other threads'
// measured reads consult. Dropped thread writes are the burst tier's
// documented drift source: a later measured reader on another thread may
// miss a thread-induced first-access the exact profiler would count.
//
// A branch-free OR over the batch decides whether any kernel-mediated event
// is present at all; compute-bound workloads (the Table-1 suite) have none,
// so their skipped batches cost one pass of pure loads and a counter add.
func (p *Profiler) memBatchSkip(events []guest.MemEvent) {
	var or guest.MemEvent
	for _, e := range events {
		or |= e
	}
	if !or.IsKernel() {
		p.sstats.skippedEvents += uint64(len(events))
		return
	}
	var skipped uint64
	for _, e := range events {
		if e.IsWrite() && e.IsKernel() {
			a := e.Addr()
			ts := p.bump()
			p.gcur.Chunk(a)[a&(shadow.ChunkSize-1)] = uint64(ts)<<32 | uint64(kernelWriter)
			continue
		}
		skipped++
	}
	p.sstats.skippedEvents += skipped
}

// publishSampling pushes the sampling tallies into the telemetry registry.
// Nil-receiver safe end to end: a nil registry is a no-op (Options.Sampling
// must work without telemetry attached), and the Counter/Gauge handles are
// themselves nil-safe.
func (p *Profiler) publishSampling(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("core/sampling_suppressed_reads").Add(p.sstats.suppressed)
	reg.Counter("core/sampling_skipped_events").Add(p.sstats.skippedEvents)
	reg.Counter("core/sampling_burst_windows").Add(p.sstats.burstWindows)
	reg.Counter("core/sampling_sampled_out").Add(p.sstats.sampledOut)
	exact, sampled := p.routineTiers()
	reg.Gauge("core/sampling_routines_exact").SetMax(exact)
	reg.Gauge("core/sampling_routines_sampled").SetMax(sampled)
}

// routineTiers counts, across live and retired thread views, how many
// distinct routines stayed fully measured and how many had at least one
// activation sampled out — the per-tier routine counts of the telemetry
// snapshot and the honesty marker behind Sampled().
func (p *Profiler) routineTiers() (exact, sampled int64) {
	var seen, samp []bool
	mark := func(tv *threadView) {
		for rtn, a := range tv.acts {
			if a == nil {
				continue
			}
			for len(seen) <= rtn {
				seen = append(seen, false)
				samp = append(samp, false)
			}
			seen[rtn] = true
			if a.SampledOut != 0 {
				samp[rtn] = true
			}
		}
	}
	for _, tv := range p.retired {
		mark(tv)
	}
	for _, tv := range p.threads {
		mark(tv)
	}
	for i, s := range seen {
		if !s {
			continue
		}
		if samp[i] {
			sampled++
		} else {
			exact++
		}
	}
	return exact, sampled
}
