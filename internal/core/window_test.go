package core

import (
	"bytes"
	"testing"

	"repro/internal/guest"
	"repro/internal/trace"
)

// recordedRun executes a small multithreaded recursive program under the
// trace recorder and returns the recording.
func recordedRun(t *testing.T) *trace.Trace {
	t.Helper()
	rec := trace.NewRecorder()
	m := guest.NewMachine(guest.Config{Timeslice: 3, Tools: []guest.Tool{rec}})
	data := m.Static(32)
	err := m.Run(func(th *guest.Thread) {
		var kids []*guest.Thread
		for w := 0; w < 2; w++ {
			kids = append(kids, th.Spawn("w", func(c *guest.Thread) {
				var rec func(d int)
				rec = func(d int) {
					c.Fn("rec", func() {
						c.Load(data + guest.Addr(d))
						c.Store(data+guest.Addr(d+8), uint64(d))
						if d < 3 {
							rec(d + 1)
						}
					})
				}
				c.Fn("work", func() { rec(0) })
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Trace()
}

// tsCuts returns k-1 evenly spaced cut timestamps over the trace's span.
func tsCuts(tr *trace.Trace, k int) []uint64 {
	var lo, hi uint64
	first := true
	for i := range tr.Threads {
		for _, e := range tr.Threads[i].Events {
			if first || e.TS < lo {
				lo = e.TS
			}
			if first || e.TS > hi {
				hi = e.TS
			}
			first = false
		}
	}
	var cuts []uint64
	for i := 1; i < k; i++ {
		cuts = append(cuts, lo+(hi-lo)*uint64(i)/uint64(k))
	}
	return cuts
}

// TestWindowCutsMergeToBatch: splitting the merged stream into time windows,
// analyzing incrementally with a cut per window, and merging the partials
// must reproduce the batch analysis byte for byte — flat profile and
// context tree alike — regardless of merge order.
func TestWindowCutsMergeToBatch(t *testing.T) {
	tr := recordedRun(t)
	opts := Options{ContextSensitive: true}

	batch := New(opts)
	if err := trace.Replay(tr, 1, batch); err != nil {
		t.Fatal(err)
	}
	want, err := batch.Profile().Export()
	if err != nil {
		t.Fatal(err)
	}

	const k = 4
	windows := trace.SplitByTS(tr, tsCuts(tr, k))
	in := NewIncremental(opts)
	var parts []*PartialProfile
	for i, w := range windows {
		if err := in.FeedTrace(w, 1); err != nil {
			t.Fatal(err)
		}
		if i == len(windows)-1 {
			in.Finish()
		}
		part := in.Cut()
		if part.FirstWindow != i || part.LastWindow != i {
			t.Errorf("cut %d: window range [%d,%d], want [%d,%d]", i, part.FirstWindow, part.LastWindow, i, i)
		}
		parts = append(parts, part)
	}
	if got := in.Profiler().Windows(); got != k {
		t.Errorf("Windows() = %d, want %d", got, k)
	}

	merged := MergePartials(parts...)
	if merged.FirstWindow != 0 || merged.LastWindow != k-1 {
		t.Errorf("merged window range [%d,%d], want [0,%d]", merged.FirstWindow, merged.LastWindow, k-1)
	}
	var sum uint64
	for _, p := range parts {
		sum += p.Events
	}
	if sum == 0 || merged.Events != sum {
		t.Errorf("merged Events = %d, want the partials' sum %d (> 0)", merged.Events, sum)
	}
	got, err := merged.Profile.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged window profile diverges from batch (%d vs %d bytes)", len(got), len(want))
	}
	if merged.Context == nil {
		t.Fatal("merged partial lost the context tree")
	}
	if wantCtx, gotCtx := dumpContexts(batch.ContextTree()), dumpContexts(merged.Context); wantCtx != gotCtx {
		t.Errorf("merged context tree diverges from batch:\n--- batch\n%s\n--- merged\n%s", wantCtx, gotCtx)
	}

	// Associativity/commutativity: folding the partials in reverse order
	// must produce the same canonical export.
	rev := make([]*PartialProfile, 0, len(parts))
	for i := len(parts) - 1; i >= 0; i-- {
		rev = append(rev, parts[i])
	}
	got2, err := MergePartials(rev...).Profile.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, got) {
		t.Error("merge result depends on partial order")
	}
}

// TestCutWindowEmptyWindow: cutting with nothing recorded yields an empty
// partial that merges as a no-op.
func TestCutWindowEmptyWindow(t *testing.T) {
	tr := recordedRun(t)
	in := NewIncremental(Options{})
	if err := in.FeedTrace(tr, 1); err != nil {
		t.Fatal(err)
	}
	in.Finish()
	full := in.Cut()
	empty := in.Cut()
	if empty.Events != 0 {
		t.Errorf("empty window recorded %d events", empty.Events)
	}
	if got := len(empty.Profile.Routines); got != 0 {
		t.Errorf("empty window recorded %d routines", got)
	}
	want, err := full.Profile.Export()
	if err != nil {
		t.Fatal(err)
	}
	got, err := MergePartials(full, empty).Profile.Export()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merging an empty window changed the profile")
	}
}

// TestIncrementalGuards: incompatible name tables and post-Finish feeding
// are rejected.
func TestIncrementalGuards(t *testing.T) {
	in := NewIncremental(Options{})
	if err := in.ExtendTables([]string{"a", "b"}, nil); err != nil {
		t.Fatal(err)
	}
	// A re-sent prefix and a clean extension are both fine.
	if err := in.ExtendTables([]string{"a"}, nil); err != nil {
		t.Errorf("prefix re-send rejected: %v", err)
	}
	if err := in.ExtendTables([]string{"a", "b", "c"}, []string{"mu"}); err != nil {
		t.Errorf("extension rejected: %v", err)
	}
	if err := in.ExtendTables([]string{"a", "x"}, nil); err == nil {
		t.Error("conflicting routine table accepted")
	}
	if err := in.FeedEvent(trace.Event{TS: 1, Thread: 1, Kind: trace.KindCall}); err != nil {
		t.Fatal(err)
	}
	in.Finish()
	in.Finish() // idempotent
	if err := in.FeedEvent(trace.Event{TS: 2, Thread: 1, Kind: trace.KindReturn}); err == nil {
		t.Error("FeedEvent accepted after Finish")
	}
}

// TestMergePartialsNilHandling: nils are skipped and zero partials yield an
// empty one.
func TestMergePartialsNilHandling(t *testing.T) {
	out := MergePartials(nil, nil)
	if out == nil || out.Profile == nil {
		t.Fatal("MergePartials of nils should yield an empty partial")
	}
	if out.Events != 0 || len(out.Profile.Routines) != 0 {
		t.Errorf("empty merge holds data: %d events, %d routines", out.Events, len(out.Profile.Routines))
	}
	a := &PartialProfile{FirstWindow: 2, LastWindow: 3, Events: 5, Profile: newProfile()}
	b := &PartialProfile{FirstWindow: 4, LastWindow: 7, Events: 6, Profile: newProfile()}
	m := MergePartials(nil, a, nil, b)
	if m.FirstWindow != 2 || m.LastWindow != 7 || m.Events != 11 {
		t.Errorf("merged = [%d,%d] %d events, want [2,7] 11", m.FirstWindow, m.LastWindow, m.Events)
	}
}
