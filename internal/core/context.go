package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/guest"
)

// Context-sensitive input-sensitive profiling: instead of aggregating all
// activations of a routine together, activations are keyed by their calling
// context — the chain of pending routines that led to them — organized as a
// calling context tree (CCT). The same routine often has different
// asymptotic behaviour under different callers (a comparator called from a
// sort vs. from a single lookup); context sensitivity separates those cost
// functions. This follows the aprof line's extension of input-sensitive
// profiling to calling contexts; enable it with Options.ContextSensitive.

// ContextNode is one calling context: the routine at the end of a call
// chain, with per-thread activation aggregates and child contexts.
type ContextNode struct {
	// Routine is the interned routine name of this context's frame.
	Routine string

	parent   *ContextNode
	children map[guest.RoutineID]*ContextNode

	// PerThread aggregates the activations observed in exactly this
	// context (not including descendants' own activations).
	PerThread map[guest.ThreadID]*Activations
}

// ContextTree is a calling context tree of profiled activations.
type ContextTree struct {
	root  *ContextNode
	nodes int
}

func newContextTree() *ContextTree {
	return &ContextTree{root: &ContextNode{Routine: "<root>"}, nodes: 1}
}

// Root returns the synthetic root context (thread start).
func (t *ContextTree) Root() *ContextNode { return t.root }

// NumContexts returns the number of distinct calling contexts observed,
// excluding the synthetic root.
func (t *ContextTree) NumContexts() int { return t.nodes - 1 }

// childID descends from n to its child context for routine r, creating it on
// first visit. The routine name is resolved from env only when a node is
// created, keeping name lookups off the per-call path.
func (t *ContextTree) childID(n *ContextNode, r guest.RoutineID, env guest.Env) *ContextNode {
	if n.children == nil {
		n.children = make(map[guest.RoutineID]*ContextNode)
	}
	c := n.children[r]
	if c == nil {
		c = &ContextNode{Routine: env.RoutineName(r), parent: n}
		n.children[r] = c
		t.nodes++
	}
	return c
}

// Parent returns the caller's context, or nil at the root.
func (n *ContextNode) Parent() *ContextNode {
	if n.parent != nil && n.parent.Routine == "<root>" {
		return nil
	}
	return n.parent
}

// Path returns the calling context as "a > b > c".
func (n *ContextNode) Path() string {
	var parts []string
	for c := n; c != nil && c.Routine != "<root>"; c = c.parent {
		parts = append(parts, c.Routine)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, " > ")
}

// Depth returns the number of frames in the context.
func (n *ContextNode) Depth() int {
	d := 0
	for c := n; c != nil && c.Routine != "<root>"; c = c.parent {
		d++
	}
	return d
}

// Merged combines the context's per-thread aggregates.
func (n *ContextNode) Merged() *Activations {
	out := newActivations(0)
	ids := make([]guest.ThreadID, 0, len(n.PerThread))
	for id := range n.PerThread {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n.PerThread[id].mergeInto(out)
	}
	return out
}

// Children returns the child contexts sorted by routine name.
func (n *ContextNode) Children() []*ContextNode {
	out := make([]*ContextNode, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Routine < out[j].Routine })
	return out
}

func (n *ContextNode) record(t guest.ThreadID, f frame, cost uint64) {
	if n.PerThread == nil {
		n.PerThread = make(map[guest.ThreadID]*Activations)
	}
	a := n.PerThread[t]
	if a == nil {
		a = newActivations(t)
		n.PerThread[t] = a
	}
	a.record(f, cost)
}

// recordSampledOut mirrors record for a sampled-out activation (burst
// sampling): the call and cost are counted, no metric data is recorded.
func (n *ContextNode) recordSampledOut(t guest.ThreadID, cost uint64) {
	if n.PerThread == nil {
		n.PerThread = make(map[guest.ThreadID]*Activations)
	}
	a := n.PerThread[t]
	if a == nil {
		a = newActivations(t)
		n.PerThread[t] = a
	}
	a.RecordSampledOut(cost)
}

// Clone deep-copies the tree: structure, routine names and per-thread
// aggregates. The clone is detached — the profiler may keep recording into
// the original.
func (t *ContextTree) Clone() *ContextTree {
	out := &ContextTree{nodes: t.nodes}
	out.root = cloneContextNode(t.root, nil)
	return out
}

func cloneContextNode(n, parent *ContextNode) *ContextNode {
	cp := &ContextNode{Routine: n.Routine, parent: parent}
	if len(n.PerThread) > 0 {
		cp.PerThread = make(map[guest.ThreadID]*Activations, len(n.PerThread))
		for id, a := range n.PerThread {
			cp.PerThread[id] = a.clone()
		}
	}
	if len(n.children) > 0 {
		cp.children = make(map[guest.RoutineID]*ContextNode, len(n.children))
		for r, c := range n.children {
			cp.children[r] = cloneContextNode(c, cp)
		}
	}
	return cp
}

// Merge folds another tree into t, matching contexts by their routine-id
// path from the root: per-thread aggregates of coinciding contexts combine,
// contexts only o observed are adopted (as deep copies). Both trees must
// come from analyses over the same routine table — routine ids are
// meaningful only relative to it — which the coinciding nodes' names
// cross-check. o is not mutated.
func (t *ContextTree) Merge(o *ContextTree) {
	if o == nil {
		return
	}
	t.mergeNode(t.root, o.root)
}

func (t *ContextTree) mergeNode(dst, src *ContextNode) {
	for id, a := range src.PerThread {
		if dst.PerThread == nil {
			dst.PerThread = make(map[guest.ThreadID]*Activations)
		}
		d := dst.PerThread[id]
		if d == nil {
			d = newActivations(id)
			dst.PerThread[id] = d
		}
		a.mergeInto(d)
	}
	for r, sc := range src.children {
		if dst.children == nil {
			dst.children = make(map[guest.RoutineID]*ContextNode)
		}
		dc := dst.children[r]
		if dc == nil {
			dc = cloneContextNode(sc, dst)
			dst.children[r] = dc
			t.nodes += countContexts(sc)
			continue
		}
		// Coinciding id paths must carry the same interned name; a mismatch
		// means the trees come from incompatible routine tables, which the
		// documented contract excludes. Merge by id regardless — exactly
		// Profile.Merge's thread-id contract.
		t.mergeNode(dc, sc)
	}
}

// countContexts returns the number of contexts in the subtree rooted at n,
// including n itself.
func countContexts(n *ContextNode) int {
	total := 1
	for _, c := range n.children {
		total += countContexts(c)
	}
	return total
}

// clearAggregates drops every node's per-thread aggregates while keeping
// the tree structure (live threadView.ctx pointers reference the nodes), so
// a window cut can snapshot-and-reset context data exactly like the flat
// profile.
func (t *ContextTree) clearAggregates() {
	var rec func(n *ContextNode)
	rec = func(n *ContextNode) {
		n.PerThread = nil
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Walk visits every context with recorded activations in depth-first,
// name-sorted order.
func (t *ContextTree) Walk(visit func(n *ContextNode)) {
	var rec func(n *ContextNode)
	rec = func(n *ContextNode) {
		if n.Routine != "<root>" && len(n.PerThread) > 0 {
			visit(n)
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(t.root)
}

// Contexts returns every context with recorded activations.
func (t *ContextTree) Contexts() []*ContextNode {
	var out []*ContextNode
	t.Walk(func(n *ContextNode) { out = append(out, n) })
	return out
}

// Find returns the context reached by the given routine-name path from the
// root, or nil.
func (t *ContextTree) Find(path ...string) *ContextNode {
	n := t.root
	for _, name := range path {
		var next *ContextNode
		for _, c := range n.children {
			if c.Routine == name {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
	if n == t.root {
		return nil
	}
	return n
}

// FlattenByRoutine folds the tree back into per-routine aggregates — the
// consistency bridge to the flat profile: for every routine, the sum of its
// context aggregates must equal its flat aggregates (tested).
func (t *ContextTree) FlattenByRoutine() map[string]*Activations {
	out := make(map[string]*Activations)
	t.Walk(func(n *ContextNode) {
		a := out[n.Routine]
		if a == nil {
			a = newActivations(0)
			out[n.Routine] = a
		}
		n.Merged().mergeInto(a)
	})
	return out
}

// String summarizes the tree.
func (t *ContextTree) String() string {
	return fmt.Sprintf("ContextTree(%d contexts)", t.NumContexts())
}
