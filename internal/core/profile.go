package core

import (
	"sort"

	"repro/internal/guest"
)

// Point aggregates all activations of one routine, by one thread, that had
// the same input size N: one point of the paper's cost plots.
type Point struct {
	N       uint64 // input size (a trms or rms value)
	Calls   uint64 // activations observed with this input size
	MinCost uint64 // minimum cumulative cost (basic blocks)
	MaxCost uint64 // maximum cumulative cost (worst-case running time plots)
	SumCost uint64 // total cost (for average-cost plots)
}

func (pt *Point) add(cost uint64) {
	if pt.Calls == 0 || cost < pt.MinCost {
		pt.MinCost = cost
	}
	if cost > pt.MaxCost {
		pt.MaxCost = cost
	}
	pt.Calls++
	pt.SumCost += cost
}

func (pt *Point) merge(o *Point) {
	if pt.Calls == 0 || (o.Calls > 0 && o.MinCost < pt.MinCost) {
		pt.MinCost = o.MinCost
	}
	if o.MaxCost > pt.MaxCost {
		pt.MaxCost = o.MaxCost
	}
	pt.Calls += o.Calls
	pt.SumCost += o.SumCost
}

// Activations aggregates every activation of one routine by one thread.
type Activations struct {
	Thread guest.ThreadID

	Calls   uint64
	SumCost uint64

	// SumTRMS and SumRMS are the metric totals over all activations; the
	// paper's input-volume metric is 1 - SumRMS/SumTRMS.
	SumTRMS uint64
	SumRMS  uint64

	// InducedThread and InducedExternal count induced first-accesses
	// performed by the routine's activations including their descendants
	// (the per-routine accounting of the paper's Figures 9, 18 and 19).
	InducedThread   uint64
	InducedExternal uint64

	// SampledOut and SampledOutCost count the activations (and their total
	// cost) that ran without shadow instrumentation under burst sampling
	// (Options.Sampling). Sampled-out activations are included in Calls and
	// SumCost — both stay exact, since observing less cannot change what
	// the guest executes — but contribute nothing to the metric sums or the
	// histograms; consistency checks and mean-cost readers must use
	// MeasuredCalls. Always zero for exact and suppress-tier profiles.
	SampledOut     uint64
	SampledOutCost uint64

	// PartialCalls counts the measured activations whose subtrees contain
	// sampled-out work: they enter the histograms (so MeasuredCalls
	// includes them) but their recorded metrics undercount the skipped
	// descendants' contributions by an unbounded amount, so bounded-error
	// reporting must not treat them as exact. Always zero without burst
	// sampling.
	PartialCalls uint64

	// ByTRMS and ByRMS are the input-size histograms: one Point per
	// distinct input-size value, the raw material of every cost plot.
	ByTRMS map[uint64]*Point
	ByRMS  map[uint64]*Point
}

func newActivations(t guest.ThreadID) *Activations {
	return &Activations{
		Thread: t,
		ByTRMS: make(map[uint64]*Point),
		ByRMS:  make(map[uint64]*Point),
	}
}

// NewActivations returns an empty aggregate for activations by thread t,
// ready to Record into. It is the building block external analyzers (such as
// the parallel trace-replay pipeline) use to assemble profiles identical to
// the inline profiler's.
func NewActivations(t guest.ThreadID) *Activations { return newActivations(t) }

// Record folds one completed activation with final (already non-negative)
// metric values into the aggregate: counts, metric sums, induced-input split
// and both input-size histograms.
func (a *Activations) Record(trms, rms, inducedThread, inducedExternal, cost uint64) {
	a.Calls++
	a.SumCost += cost
	a.SumTRMS += trms
	a.SumRMS += rms
	a.InducedThread += inducedThread
	a.InducedExternal += inducedExternal

	pt := a.ByTRMS[trms]
	if pt == nil {
		pt = &Point{N: trms}
		a.ByTRMS[trms] = pt
	}
	pt.add(cost)

	pr := a.ByRMS[rms]
	if pr == nil {
		pr = &Point{N: rms}
		a.ByRMS[rms] = pr
	}
	pr.add(cost)
}

func (a *Activations) record(f frame, cost uint64) {
	a.Record(clampMetric(f.trms), clampMetric(f.rms), f.inducedThread, f.inducedExternal, cost)
	if f.partial {
		a.PartialCalls++
	}
}

// RecordSampledOut folds one activation that ran without measurement (burst
// sampling) into the aggregate: the call and its cost are counted, and the
// sampled-out totals advance so consistency checks and reports can separate
// measured from unmeasured work.
func (a *Activations) RecordSampledOut(cost uint64) {
	a.Calls++
	a.SumCost += cost
	a.SampledOut++
	a.SampledOutCost += cost
}

// MeasuredCalls returns the number of fully measured activations — the
// denominator for any per-activation metric average, and the count the
// input-size histograms sum to.
func (a *Activations) MeasuredCalls() uint64 { return a.Calls - a.SampledOut }

// Sampled reports whether the aggregate's metric data is incomplete under
// burst sampling: some activations were sampled out entirely, or some
// measured activations lost sampled-out descendants' contributions.
func (a *Activations) Sampled() bool { return a.SampledOut != 0 || a.PartialCalls != 0 }

// clampMetric converts a completed activation's partial metric to its final
// value. At return the partial equals the true metric, which is
// non-negative; the clamp only defends against misuse on inner frames.
func clampMetric(v int64) uint64 {
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// clone deep-copies the aggregate, including both histograms. The Profiler
// hands clones to materialized profiles so the originals keep accumulating.
func (a *Activations) clone() *Activations {
	out := &Activations{
		Thread:          a.Thread,
		Calls:           a.Calls,
		SumCost:         a.SumCost,
		SumTRMS:         a.SumTRMS,
		SumRMS:          a.SumRMS,
		InducedThread:   a.InducedThread,
		InducedExternal: a.InducedExternal,
		SampledOut:      a.SampledOut,
		SampledOutCost:  a.SampledOutCost,
		PartialCalls:    a.PartialCalls,
		ByTRMS:          make(map[uint64]*Point, len(a.ByTRMS)),
		ByRMS:           make(map[uint64]*Point, len(a.ByRMS)),
	}
	for n, pt := range a.ByTRMS {
		cp := *pt
		out.ByTRMS[n] = &cp
	}
	for n, pt := range a.ByRMS {
		cp := *pt
		out.ByRMS[n] = &cp
	}
	return out
}

func (a *Activations) mergeInto(dst *Activations) {
	dst.Calls += a.Calls
	dst.SumCost += a.SumCost
	dst.SumTRMS += a.SumTRMS
	dst.SumRMS += a.SumRMS
	dst.InducedThread += a.InducedThread
	dst.InducedExternal += a.InducedExternal
	dst.SampledOut += a.SampledOut
	dst.SampledOutCost += a.SampledOutCost
	dst.PartialCalls += a.PartialCalls
	for n, pt := range a.ByTRMS {
		d := dst.ByTRMS[n]
		if d == nil {
			d = &Point{N: n}
			dst.ByTRMS[n] = d
		}
		d.merge(pt)
	}
	for n, pt := range a.ByRMS {
		d := dst.ByRMS[n]
		if d == nil {
			d = &Point{N: n}
			dst.ByRMS[n] = d
		}
		d.merge(pt)
	}
}

// RoutineProfile holds the thread-sensitive profiles of one routine:
// activations made by different threads are kept distinct, as in the paper,
// and can be combined afterwards with Merged.
type RoutineProfile struct {
	Name      string
	PerThread map[guest.ThreadID]*Activations
}

// Merged combines the routine's per-thread profiles into one.
func (r *RoutineProfile) Merged() *Activations {
	out := newActivations(0)
	for _, tid := range r.ThreadIDs() {
		r.PerThread[tid].mergeInto(out)
	}
	return out
}

// Sampled reports whether any thread's activations of the routine were
// sampled out under burst sampling — the per-routine exact/sampled marker
// reports and CLIs display.
func (r *RoutineProfile) Sampled() bool {
	for _, a := range r.PerThread {
		if a.Sampled() {
			return true
		}
	}
	return false
}

// ThreadIDs returns the ids of threads that activated the routine, sorted.
func (r *RoutineProfile) ThreadIDs() []guest.ThreadID {
	ids := make([]guest.ThreadID, 0, len(r.PerThread))
	for id := range r.PerThread {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DistinctTRMS returns the number of distinct trms values collected for the
// routine across all threads (|trms_r| in the profile-richness metric).
func (r *RoutineProfile) DistinctTRMS() int {
	seen := make(map[uint64]struct{})
	for _, a := range r.PerThread {
		for n := range a.ByTRMS {
			seen[n] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctRMS returns the number of distinct rms values collected for the
// routine across all threads (|rms_r|).
func (r *RoutineProfile) DistinctRMS() int {
	seen := make(map[uint64]struct{})
	for _, a := range r.PerThread {
		for n := range a.ByRMS {
			seen[n] = struct{}{}
		}
	}
	return len(seen)
}

// Profile is a complete input-sensitive profile of one execution.
type Profile struct {
	Routines map[string]*RoutineProfile

	// InducedThread and InducedExternal are execution-global counts of
	// induced first-accesses, each event counted once (the accounting of
	// the paper's Figure 17).
	InducedThread   uint64
	InducedExternal uint64
}

func newProfile() *Profile {
	return &Profile{Routines: make(map[string]*RoutineProfile)}
}

// NewProfile returns an empty profile, ready to AddActivations or Merge
// into. The inline Profiler builds its profile internally; external
// analyzers (trace-replay pipelines, importers) start from NewProfile.
func NewProfile() *Profile { return newProfile() }

// AddActivations folds an externally built aggregate into the profile under
// the given routine name. If the (name, a.Thread) slot is empty, the profile
// adopts a directly — the caller must not mutate it afterwards; otherwise a
// is merged into the existing aggregate.
func (p *Profile) AddActivations(name string, a *Activations) {
	rp := p.Routines[name]
	if rp == nil {
		rp = &RoutineProfile{Name: name, PerThread: make(map[guest.ThreadID]*Activations)}
		p.Routines[name] = rp
	}
	dst := rp.PerThread[a.Thread]
	if dst == nil {
		rp.PerThread[a.Thread] = a
		return
	}
	a.mergeInto(dst)
}

func (p *Profile) record(name string, t guest.ThreadID, f frame, cost uint64) {
	rp := p.Routines[name]
	if rp == nil {
		rp = &RoutineProfile{Name: name, PerThread: make(map[guest.ThreadID]*Activations)}
		p.Routines[name] = rp
	}
	a := rp.PerThread[t]
	if a == nil {
		a = newActivations(t)
		rp.PerThread[t] = a
	}
	a.record(f, cost)
}

// Routine returns the profile of the named routine, or nil.
func (p *Profile) Routine(name string) *RoutineProfile { return p.Routines[name] }

// RoutineNames returns all profiled routine names, sorted.
func (p *Profile) RoutineNames() []string {
	names := make([]string, 0, len(p.Routines))
	for n := range p.Routines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedPoints returns the points of m (a ByTRMS or ByRMS histogram) in
// ascending input-size order.
func SortedPoints(m map[uint64]*Point) []*Point {
	pts := make([]*Point, 0, len(m))
	for _, pt := range m {
		pts = append(pts, pt)
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].N < pts[j].N })
	return pts
}

// Merge folds another profile into p: per-routine, per-thread aggregates and
// histograms are combined, as are the global induced counters. Use it to
// aggregate profiles from repeated runs of the same program (thread ids must
// mean the same thing in both runs, which deterministic workloads guarantee).
func (p *Profile) Merge(o *Profile) {
	p.InducedThread += o.InducedThread
	p.InducedExternal += o.InducedExternal
	for name, orp := range o.Routines {
		rp := p.Routines[name]
		if rp == nil {
			rp = &RoutineProfile{Name: name, PerThread: make(map[guest.ThreadID]*Activations)}
			p.Routines[name] = rp
		}
		for tid, oa := range orp.PerThread {
			a := rp.PerThread[tid]
			if a == nil {
				a = newActivations(tid)
				rp.PerThread[tid] = a
			}
			oa.mergeInto(a)
		}
	}
}
