package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/guest"
)

// ProfileDump is the serializable form of a Profile, stable across versions:
// routines sorted by name, threads and points sorted numerically.
type ProfileDump struct {
	Version         int           `json:"version"`
	InducedThread   uint64        `json:"induced_thread"`
	InducedExternal uint64        `json:"induced_external"`
	Routines        []RoutineDump `json:"routines"`
}

// RoutineDump serializes one routine's thread-sensitive profiles.
type RoutineDump struct {
	Name    string       `json:"name"`
	Threads []ThreadDump `json:"threads"`
}

// ThreadDump serializes one (routine, thread) activation aggregate.
type ThreadDump struct {
	Thread          int32       `json:"thread"`
	Calls           uint64      `json:"calls"`
	SumCost         uint64      `json:"sum_cost"`
	SumTRMS         uint64      `json:"sum_trms"`
	SumRMS          uint64      `json:"sum_rms"`
	InducedThread   uint64      `json:"induced_thread"`
	InducedExternal uint64      `json:"induced_external"`
	SampledOut      uint64      `json:"sampled_out,omitempty"`
	SampledOutCost  uint64      `json:"sampled_out_cost,omitempty"`
	PartialCalls    uint64      `json:"partial_calls,omitempty"`
	ByTRMS          []PointDump `json:"by_trms"`
	ByRMS           []PointDump `json:"by_rms"`
}

// PointDump serializes one input-size bucket.
type PointDump struct {
	N       uint64 `json:"n"`
	Calls   uint64 `json:"calls"`
	MinCost uint64 `json:"min_cost"`
	MaxCost uint64 `json:"max_cost"`
	SumCost uint64 `json:"sum_cost"`
}

const dumpVersion = 1

// Dump converts the profile to its serializable form.
func (p *Profile) Dump() *ProfileDump {
	d := &ProfileDump{
		Version:         dumpVersion,
		InducedThread:   p.InducedThread,
		InducedExternal: p.InducedExternal,
	}
	for _, name := range p.RoutineNames() {
		rp := p.Routines[name]
		rd := RoutineDump{Name: name}
		for _, tid := range rp.ThreadIDs() {
			a := rp.PerThread[tid]
			rd.Threads = append(rd.Threads, ThreadDump{
				Thread:          int32(tid),
				Calls:           a.Calls,
				SumCost:         a.SumCost,
				SumTRMS:         a.SumTRMS,
				SumRMS:          a.SumRMS,
				InducedThread:   a.InducedThread,
				InducedExternal: a.InducedExternal,
				SampledOut:      a.SampledOut,
				SampledOutCost:  a.SampledOutCost,
				PartialCalls:    a.PartialCalls,
				ByTRMS:          dumpPoints(a.ByTRMS),
				ByRMS:           dumpPoints(a.ByRMS),
			})
		}
		d.Routines = append(d.Routines, rd)
	}
	return d
}

func dumpPoints(m map[uint64]*Point) []PointDump {
	out := make([]PointDump, 0, len(m))
	for _, pt := range m {
		out = append(out, PointDump{N: pt.N, Calls: pt.Calls, MinCost: pt.MinCost, MaxCost: pt.MaxCost, SumCost: pt.SumCost})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].N < out[j].N })
	return out
}

// Restore rebuilds a Profile from its serializable form.
func (d *ProfileDump) Restore() (*Profile, error) {
	if d.Version != dumpVersion {
		return nil, fmt.Errorf("core: unsupported profile dump version %d", d.Version)
	}
	p := newProfile()
	p.InducedThread = d.InducedThread
	p.InducedExternal = d.InducedExternal
	for _, rd := range d.Routines {
		rp := &RoutineProfile{Name: rd.Name, PerThread: make(map[guest.ThreadID]*Activations)}
		p.Routines[rd.Name] = rp
		for _, td := range rd.Threads {
			a := newActivations(guest.ThreadID(td.Thread))
			a.Calls = td.Calls
			a.SumCost = td.SumCost
			a.SumTRMS = td.SumTRMS
			a.SumRMS = td.SumRMS
			a.InducedThread = td.InducedThread
			a.InducedExternal = td.InducedExternal
			a.SampledOut = td.SampledOut
			a.SampledOutCost = td.SampledOutCost
			a.PartialCalls = td.PartialCalls
			for _, pd := range td.ByTRMS {
				a.ByTRMS[pd.N] = &Point{N: pd.N, Calls: pd.Calls, MinCost: pd.MinCost, MaxCost: pd.MaxCost, SumCost: pd.SumCost}
			}
			for _, pd := range td.ByRMS {
				a.ByRMS[pd.N] = &Point{N: pd.N, Calls: pd.Calls, MinCost: pd.MinCost, MaxCost: pd.MaxCost, SumCost: pd.SumCost}
			}
			rp.PerThread[guest.ThreadID(td.Thread)] = a
		}
	}
	return p, nil
}

// Export serializes the profile to its canonical byte form: the indented
// JSON of Dump, with routines sorted by name and threads and points sorted
// numerically. Two profiles with equal contents export byte-identically, so
// Export equality is the strongest practical profile-equality check — the
// differential tests between inline, sequential-replay and parallel-replay
// profiling compare Export outputs.
func (p *Profile) Export() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteJSON serializes the profile as indented JSON.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Dump())
}

// ReadJSON deserializes a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*Profile, error) {
	var d ProfileDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("core: decoding profile JSON: %w", err)
	}
	return d.Restore()
}
