package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/guest"
)

// randProgram builds a randomized multithreaded guest program from a seed:
// several threads executing random sequences of nested calls, loads, stores
// and kernel I/O over a small shared address pool, so that cross-thread and
// kernel-induced accesses are frequent. It is the workload generator for the
// differential tests below.
type randProgram struct {
	seed      int64
	threads   int
	opsPer    int
	cells     int
	timeslice int
	unbatched bool
}

func (rp randProgram) run(t *testing.T, tools ...guest.Tool) {
	t.Helper()
	m := guest.NewMachine(guest.Config{Timeslice: rp.timeslice, Tools: tools, Unbatched: rp.unbatched})
	pool := m.Static(rp.cells)
	dev := m.NewDevice("dev", nil)
	err := m.Run(func(th *guest.Thread) {
		var kids []*guest.Thread
		for w := 0; w < rp.threads; w++ {
			rng := rand.New(rand.NewSource(rp.seed + int64(w)*7919))
			kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *guest.Thread) {
				c.Fn("root", func() {
					depth := 1
					for op := 0; op < rp.opsPer; op++ {
						cell := pool + guest.Addr(rng.Intn(rp.cells))
						switch r := rng.Intn(100); {
						case r < 15 && depth < 6:
							c.Call(fmt.Sprintf("f%d", rng.Intn(5)))
							depth++
						case r < 30 && depth > 1:
							c.Return()
							depth--
						case r < 60:
							c.Load(cell)
						case r < 85:
							c.Store(cell, uint64(r))
						case r < 92:
							n := 1 + rng.Intn(3)
							if int(cell-pool)+n > rp.cells {
								n = 1
							}
							c.ReadDevice(dev, cell, n)
						case r < 97:
							n := 1 + rng.Intn(3)
							if int(cell-pool)+n > rp.cells {
								n = 1
							}
							c.WriteDevice(dev, cell, n)
						default:
							c.Exec(1 + rng.Intn(4))
						}
					}
					for depth > 1 {
						c.Return()
						depth--
					}
				})
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialVsNaive checks that the read/write timestamping algorithm
// produces exactly the same profiles — trms and rms histograms, costs, and
// induced-input splits — as the naive set-based reference, across many
// randomized multithreaded programs and option configurations.
func TestDifferentialVsNaive(t *testing.T) {
	configs := []Options{
		{},
		{DisableThreadInduced: true},
		{DisableExternal: true},
		{DisableThreadInduced: true, DisableExternal: true},
	}
	for seed := int64(1); seed <= 25; seed++ {
		for ci, opts := range configs {
			fast := New(opts)
			naive := NewNaive(opts)
			rp := randProgram{
				seed:      seed,
				threads:   2 + int(seed%3),
				opsPer:    300,
				cells:     24,
				timeslice: 1 + int(seed%9),
			}
			rp.run(t, fast, naive)
			if diffs := fast.Profile().Diff(naive.Profile()); len(diffs) > 0 {
				t.Fatalf("seed %d config %d: timestamping disagrees with naive reference:\n%s",
					seed, ci, joinLines(diffs, 12))
			}
		}
	}
}

// TestDifferentialWithRenumbering re-runs the differential comparison with a
// tiny renumbering threshold, so the Fig. 13 overflow pass runs many times
// mid-execution and must not change any profile.
func TestDifferentialWithRenumbering(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		fast := New(Options{RenumberThreshold: 101})
		naive := NewNaive(Options{})
		rp := randProgram{
			seed:      seed,
			threads:   3,
			opsPer:    250,
			cells:     16,
			timeslice: 2,
		}
		rp.run(t, fast, naive)
		if fast.Renumbers() == 0 {
			t.Fatalf("seed %d: renumbering never triggered; threshold ineffective", seed)
		}
		if diffs := fast.Profile().Diff(naive.Profile()); len(diffs) > 0 {
			t.Fatalf("seed %d: renumbering changed profiles (%d renumber passes):\n%s",
				seed, fast.Renumbers(), joinLines(diffs, 12))
		}
	}
}

// TestRenumberingInvariance compares two timestamping profilers on the same
// execution, one renumbering aggressively and one never, which exercises the
// renumbering pass against the algorithm itself rather than the reference.
func TestRenumberingInvariance(t *testing.T) {
	for seed := int64(30); seed <= 40; seed++ {
		often := New(Options{RenumberThreshold: 150})
		never := New(Options{})
		rp := randProgram{seed: seed, threads: 4, opsPer: 400, cells: 32, timeslice: 3}
		rp.run(t, often, never)
		if often.Renumbers() < 5 {
			t.Fatalf("seed %d: only %d renumber passes; test not exercising overflow", seed, often.Renumbers())
		}
		if diffs := often.Profile().Diff(never.Profile()); len(diffs) > 0 {
			t.Fatalf("seed %d: aggressive renumbering changed the profile:\n%s", seed, joinLines(diffs, 12))
		}
	}
}

// TestDeepStacksDifferential stresses the O(log d) ancestor adjustment with
// deep call stacks and repeated re-reads across activation boundaries.
func TestDeepStacksDifferential(t *testing.T) {
	fast := New(Options{})
	naive := NewNaive(Options{})
	m := guest.NewMachine(guest.Config{Tools: []guest.Tool{fast, naive}})
	cells := m.Static(8)
	err := m.Run(func(th *guest.Thread) {
		var rec func(d int)
		rec = func(d int) {
			th.Fn(fmt.Sprintf("depth%d", d), func() {
				th.Load(cells + guest.Addr(d%8))
				if d < 40 {
					rec(d + 1)
					if d < 6 {
						rec(d + 1) // sibling re-descend: re-reads everywhere
					}
				}
				th.Load(cells + guest.Addr((d+3)%8))
			})
		}
		rec(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := fast.Profile().Diff(naive.Profile()); len(diffs) > 0 {
		t.Fatalf("deep-stack disagreement:\n%s", joinLines(diffs, 12))
	}
}

func joinLines(lines []string, limit int) string {
	if len(lines) > limit {
		lines = append(lines[:limit:limit], fmt.Sprintf("... and %d more", len(lines)-limit))
	}
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestDifferentialUnderRandomScheduling re-runs the fast-vs-naive comparison
// under seeded random scheduling: the algorithms must agree on every legal
// interleaving, not just round-robin ones.
func TestDifferentialUnderRandomScheduling(t *testing.T) {
	for seed := int64(50); seed <= 60; seed++ {
		fast := New(Options{})
		naive := NewNaive(Options{})
		m := guest.NewMachine(guest.Config{Timeslice: 2, SchedSeed: seed, Tools: []guest.Tool{fast, naive}})
		pool := m.Static(16)
		dev := m.NewDevice("dev", nil)
		err := m.Run(func(th *guest.Thread) {
			var kids []*guest.Thread
			for w := 0; w < 3; w++ {
				w := w
				kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *guest.Thread) {
					c.Fn("work", func() {
						for i := 0; i < 120; i++ {
							cell := pool + guest.Addr((i*7+w*3)%16)
							switch i % 4 {
							case 0:
								c.Load(cell)
							case 1:
								c.Store(cell, uint64(i))
							case 2:
								c.ReadDevice(dev, cell, 1)
								c.Load(cell)
							default:
								c.Fn("inner", func() { c.Load(cell) })
							}
						}
					})
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if diffs := fast.Profile().Diff(naive.Profile()); len(diffs) > 0 {
			t.Fatalf("seed %d: disagreement under random scheduling:\n%s", seed, joinLines(diffs, 10))
		}
	}
}

// TestTRMSInvariantUnderScheduling: for the semaphore producer-consumer, the
// consumer's trms equals n under EVERY interleaving — the handoffs are fully
// synchronized, so scheduling cannot change what counts as input.
func TestTRMSInvariantUnderScheduling(t *testing.T) {
	const n = 24
	for seed := int64(0); seed <= 12; seed++ {
		p := New(Options{})
		m := guest.NewMachine(guest.Config{Timeslice: 1, SchedSeed: seed, Tools: []guest.Tool{p}})
		x := m.Static(1)
		empty := m.NewSem("empty", 1)
		full := m.NewSem("full", 0)
		err := m.Run(func(th *guest.Thread) {
			prod := th.Spawn("producer", func(pr *guest.Thread) {
				pr.Fn("producer", func() {
					for i := uint64(1); i <= n; i++ {
						pr.P(empty)
						pr.Store(x, i)
						pr.V(full)
					}
				})
			})
			cons := th.Spawn("consumer", func(c *guest.Thread) {
				c.Fn("consumer", func() {
					for i := 0; i < n; i++ {
						c.P(full)
						c.Load(x)
						c.V(empty)
					}
				})
			})
			th.Join(prod)
			th.Join(cons)
		})
		if err != nil {
			t.Fatal(err)
		}
		cons := p.Profile().Routine("consumer").Merged()
		if cons.SumTRMS != n || cons.SumRMS != 1 {
			t.Errorf("seed %d: trms=%d rms=%d, want %d and 1 (invariant broken by scheduling)",
				seed, cons.SumTRMS, cons.SumRMS, n)
		}
	}
}
