package guest

// Device models an external data source/sink (disk, network peer). Guest
// threads never touch a device directly; they ask the kernel to transfer data
// between the device and guest memory, which surfaces in the event stream as
// kernelWrite (device data loaded into memory) and kernelRead (memory data
// sent to the device) events — the paper's Section 4.3 model of external
// input.
type Device struct {
	m    *Machine
	name string

	// gen produces the i-th word of the device's input stream. Nil means
	// the device yields a default deterministic stream.
	gen  func(i uint64) uint64
	next uint64

	written  uint64 // words ever sent to the device
	checksum uint64 // running checksum of words sent, for assertions
}

// NewDevice returns a device whose input stream is defined by gen; a nil gen
// selects a deterministic mixed-congruential stream.
func (m *Machine) NewDevice(name string, gen func(i uint64) uint64) *Device {
	if gen == nil {
		gen = func(i uint64) uint64 {
			x := i*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
			x ^= x >> 31
			return x
		}
	}
	return &Device{m: m, name: name, gen: gen}
}

// Consumed returns how many words of the device's input stream have been
// read so far.
func (d *Device) Consumed() uint64 { return d.next }

// Written returns how many words have been sent to the device.
func (d *Device) Written() uint64 { return d.written }

// Checksum returns a checksum over all words sent to the device.
func (d *Device) Checksum() uint64 { return d.checksum }

// ReadDevice asks the kernel to fill the n memory cells starting at base
// with the next n words of d's input stream (e.g. a read(2) into a buffer).
// Each filled cell surfaces as a kernelWrite event; the cells are not
// considered read by the thread until the thread actually loads them.
func (th *Thread) ReadDevice(d *Device, base Addr, n int) {
	for i := 0; i < n; i++ {
		th.step()
		a := base + Addr(i)
		th.m.mem.store(a, d.gen(d.next))
		d.next++
		th.m.emitKernelWrite(th.id, a)
	}
}

// WriteDevice asks the kernel to send the n memory cells starting at base to
// the device (e.g. a write(2) from a buffer). Each cell surfaces as a
// kernelRead event: the kernel reads guest memory on the thread's behalf.
func (th *Thread) WriteDevice(d *Device, base Addr, n int) {
	for i := 0; i < n; i++ {
		th.step()
		a := base + Addr(i)
		v := th.m.mem.load(a)
		d.written++
		d.checksum = d.checksum*1099511628211 + v
		th.m.emitKernelRead(th.id, a)
	}
}
