package guest

// pageBits selects the page size of the guest memory: pages hold 2^pageBits
// words. Pages are allocated on demand, so sparse address spaces stay cheap.
const pageBits = 12

const (
	pageWords = 1 << pageBits
	pageMask  = pageWords - 1
)

// memory is the guest's word-addressed virtual memory.
type memory struct {
	pages map[uint64]*page
	// last caches the most recently touched page, which makes the common
	// sequential access pattern of guest kernels nearly map-free.
	lastIdx  uint64
	lastPage *page
}

type page struct {
	words [pageWords]uint64
}

func newMemory() *memory {
	return &memory{pages: make(map[uint64]*page)}
}

func (mem *memory) page(a Addr) *page {
	idx := uint64(a) >> pageBits
	if mem.lastPage != nil && mem.lastIdx == idx {
		return mem.lastPage
	}
	p := mem.pages[idx]
	if p == nil {
		p = new(page)
		mem.pages[idx] = p
	}
	mem.lastIdx = idx
	mem.lastPage = p
	return p
}

func (mem *memory) load(a Addr) uint64 {
	return mem.page(a).words[uint64(a)&pageMask]
}

func (mem *memory) store(a Addr, v uint64) {
	mem.page(a).words[uint64(a)&pageMask] = v
}

func (mem *memory) footprint() (pages, words int) {
	return len(mem.pages), len(mem.pages) * pageWords
}
