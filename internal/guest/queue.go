package guest

// Queue is a bounded FIFO whose payload and control cells live in guest
// memory, so passing values between threads produces the shared-memory
// traffic the trms metric is designed to observe (the producer–consumer
// pattern of the paper's Figure 2).
type Queue struct {
	mu       *Mutex
	notEmpty *Cond
	notFull  *Cond

	buf  Addr // capacity payload cells
	head Addr // control cell: next slot to read
	tail Addr // control cell: next slot to write
	size Addr // control cell: current element count
	cap  uint64

	closed bool
}

// NewQueue returns a queue with the given capacity. The payload buffer and
// control cells are allocated from machine static memory.
func (m *Machine) NewQueue(name string, capacity int) *Queue {
	if capacity <= 0 {
		panic("guest: queue capacity must be positive")
	}
	base := m.Static(capacity + 3)
	return &Queue{
		mu:       m.NewMutex("queue:" + name),
		notEmpty: m.NewCond("queue-notempty:" + name),
		notFull:  m.NewCond("queue-notfull:" + name),
		buf:      base,
		head:     base + Addr(capacity),
		tail:     base + Addr(capacity) + 1,
		size:     base + Addr(capacity) + 2,
		cap:      uint64(capacity),
	}
}

// Put appends v, blocking while the queue is full.
func (th *Thread) Put(q *Queue, v uint64) {
	th.Lock(q.mu)
	for th.Load(q.size) == q.cap {
		th.Wait(q.notFull, q.mu)
	}
	tail := th.Load(q.tail)
	th.Store(q.buf+Addr(tail), v)
	th.Store(q.tail, (tail+1)%q.cap)
	th.Store(q.size, th.Load(q.size)+1)
	th.Signal(q.notEmpty)
	th.Unlock(q.mu)
}

// Get removes and returns the oldest element. It blocks while the queue is
// empty; if the queue is closed and drained, ok is false.
func (th *Thread) Get(q *Queue) (v uint64, ok bool) {
	th.Lock(q.mu)
	for th.Load(q.size) == 0 && !q.closed {
		th.Wait(q.notEmpty, q.mu)
	}
	if th.Load(q.size) == 0 {
		th.Unlock(q.mu)
		return 0, false
	}
	head := th.Load(q.head)
	v = th.Load(q.buf + Addr(head))
	th.Store(q.head, (head+1)%q.cap)
	th.Store(q.size, th.Load(q.size)-1)
	th.Signal(q.notFull)
	th.Unlock(q.mu)
	return v, true
}

// Close marks the queue closed; Get returns ok=false once it drains.
func (th *Thread) Close(q *Queue) {
	th.Lock(q.mu)
	q.closed = true
	th.Broadcast(q.notEmpty)
	th.Unlock(q.mu)
}
