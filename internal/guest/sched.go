package guest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// errAborted is the panic value used to unwind guest goroutines after the
// run has been aborted (deadlock or guest panic).
var errAborted = errors.New("guest: run aborted")

type threadState uint8

const (
	threadNew threadState = iota
	threadRunnable
	threadRunning
	threadBlocked
	threadDone
)

// scheduler serializes guest threads. Exactly one thread executes at a time;
// runnable threads wait in a FIFO queue, which yields round-robin rotation —
// the analog of Valgrind's fair thread scheduler.
type scheduler struct {
	runnable []*Thread
	live     int
	done     chan struct{}

	// rng, when non-nil, randomizes which runnable thread runs next
	// (Config.SchedSeed); nil selects strict round-robin.
	rng *rand.Rand

	// exitMu protects live-count bookkeeping on the abort path, where
	// several unwinding goroutines may exit concurrently. In normal
	// execution there is no contention: only one guest thread runs.
	exitMu sync.Mutex
}

func (s *scheduler) setRunning(th *Thread) {
	th.state = threadRunning
}

func (s *scheduler) enqueue(th *Thread) {
	th.state = threadRunnable
	th.blockedOn = ""
	s.runnable = append(s.runnable, th)
}

// pick removes and returns the next runnable thread, or nil if none exists.
// Round-robin (FIFO) by default; a seeded machine picks uniformly among the
// runnable threads, exploring a different legal interleaving per seed.
func (s *scheduler) pick() *Thread {
	if len(s.runnable) == 0 {
		return nil
	}
	i := 0
	if s.rng != nil {
		i = s.rng.Intn(len(s.runnable))
	}
	th := s.runnable[i]
	copy(s.runnable[i:], s.runnable[i+1:])
	s.runnable = s.runnable[:len(s.runnable)-1]
	return th
}

// handoff transfers control from one guest thread to another, reporting the
// switch to attached tools.
func (m *Machine) handoff(from, to *Thread) {
	to.state = threadRunning
	m.running = to.id
	m.emitSwitch(from.id, to.id)
	to.resume <- struct{}{}
}

// yield rotates the scheduler if other threads are runnable. The current
// thread is requeued and parks until rescheduled.
func (th *Thread) yield() {
	m := th.m
	th.slice = m.cfg.Timeslice
	if len(m.sched.runnable) == 0 {
		return
	}
	m.sched.enqueue(th)
	next := m.sched.pick()
	m.handoff(th, next)
	<-th.resume
	th.checkAborted()
}

// block parks the current thread on a synchronization condition described by
// why. Another thread (or device completion) must re-enqueue it via wake.
// block detects deadlock: if no other thread is runnable, the run aborts.
func (th *Thread) block(why string) {
	m := th.m
	th.state = threadBlocked
	th.blockedOn = why
	next := m.sched.pick()
	if next == nil {
		m.abort(fmt.Errorf("guest: deadlock: thread %s(#%d) blocked on %s with no runnable threads; %s",
			th.name, th.id, why, m.deadlockState()), th)
		panic(errAborted)
	}
	m.handoff(th, next)
	<-th.resume
	th.checkAborted()
}

// wake makes a blocked thread runnable again.
func (m *Machine) wake(th *Thread) {
	m.sched.enqueue(th)
}

func (th *Thread) checkAborted() {
	if th.m.aborted != nil {
		panic(errAborted)
	}
}
