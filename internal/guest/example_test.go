package guest_test

import (
	"fmt"

	"repro/internal/guest"
)

// ExampleMachine_Run shows the guest programming model: virtual memory,
// named routine activations, and deterministic execution.
func ExampleMachine_Run() {
	m := guest.NewMachine(guest.Config{})
	data := m.Static(4)
	m.Preload(data, []uint64{10, 20, 30, 40})

	err := m.Run(func(th *guest.Thread) {
		th.Fn("sum", func() {
			total := uint64(0)
			for i := 0; i < 4; i++ {
				total += th.Load(data + guest.Addr(i))
			}
			th.Store(data, total)
		})
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("sum:", m.Peek(data))
	fmt.Println("basic blocks:", m.BBTotal())
	// Output:
	// sum: 100
	// basic blocks: 7
}

// ExampleThread_Spawn demonstrates structured concurrency with semaphores:
// the machine serializes the threads and the run is deterministic.
func ExampleThread_Spawn() {
	m := guest.NewMachine(guest.Config{Timeslice: 2})
	cell := m.Static(1)
	full := m.NewSem("full", 0)
	empty := m.NewSem("empty", 1)

	var received []uint64
	err := m.Run(func(th *guest.Thread) {
		producer := th.Spawn("producer", func(p *guest.Thread) {
			for i := uint64(1); i <= 3; i++ {
				p.P(empty)
				p.Store(cell, i*i)
				p.V(full)
			}
		})
		for i := 0; i < 3; i++ {
			th.P(full)
			received = append(received, th.Load(cell))
			th.V(empty)
		}
		th.Join(producer)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(received)
	// Output:
	// [1 4 9]
}

// ExampleThread_ReadDevice shows kernel-mediated I/O: the device fills guest
// memory through kernelWrite events, which tools observe as external input.
func ExampleThread_ReadDevice() {
	m := guest.NewMachine(guest.Config{})
	disk := m.NewDevice("disk", func(i uint64) uint64 { return 100 + i })
	buf := m.Static(3)

	err := m.Run(func(th *guest.Thread) {
		th.Fn("load", func() {
			th.ReadDevice(disk, buf, 3)
		})
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(m.Peek(buf), m.Peek(buf+1), m.Peek(buf+2))
	fmt.Println("words consumed from device:", disk.Consumed())
	// Output:
	// 100 101 102
	// words consumed from device: 3
}
