// Package guest implements a deterministic virtual machine that plays the
// role Valgrind plays for the paper's profiler: it runs multithreaded guest
// programs serialized under a fair scheduler and reports every observable
// action (routine calls and returns, memory loads and stores, kernel-mediated
// I/O, thread switches, synchronization) to attached analysis tools.
//
// Guest programs are ordinary Go functions written against the Thread API.
// They operate on a virtual word-addressed memory, so that the instrumented
// event stream — not native Go execution — defines program behaviour. The
// machine serializes guest threads exactly as Valgrind does: a single thread
// runs at a time and the scheduler rotates threads round-robin after a fixed
// timeslice of guest operations, yielding a total order over all events.
// Execution is fully deterministic for a given program and configuration.
//
// Cost is measured in basic blocks (BB), following the paper: every guest
// operation accounts for the basic block that contains it, and Exec(n) lets
// programs account for n blocks of pure computation.
package guest

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/telemetry"
)

// Addr is a virtual memory address. Each address names one memory cell
// (one machine word), the unit at which the paper counts input sizes.
type Addr uint64

// ThreadID identifies a guest thread. The main thread is always 1.
// KernelThread is a reserved pseudo-id used by tools to attribute
// kernel-mediated writes.
type ThreadID int32

// KernelThread is the pseudo thread id representing the operating system
// kernel in event streams (kernelWrite provenance).
const KernelThread ThreadID = 0

// RoutineID identifies an interned routine name within a Machine.
type RoutineID uint32

// SyncID identifies a synchronization object (semaphore, mutex, condition
// variable, ...) within a Machine.
type SyncID uint32

// SyncKind classifies synchronization events for happens-before analyses.
type SyncKind uint8

// Synchronization event kinds. Release events publish the current thread's
// state to the object; acquire events import the object's state.
const (
	SyncRelease SyncKind = iota
	SyncAcquire
)

func (k SyncKind) String() string {
	switch k {
	case SyncRelease:
		return "release"
	case SyncAcquire:
		return "acquire"
	default:
		return fmt.Sprintf("SyncKind(%d)", uint8(k))
	}
}

// Config parameterizes a Machine.
type Config struct {
	// Timeslice is the number of guest operations a thread may execute
	// before the scheduler rotates to the next runnable thread. This is
	// the analog of Valgrind's fair scheduler quantum. Zero selects
	// DefaultTimeslice.
	Timeslice int

	// Tools are the analysis tools attached to the machine. Every guest
	// event is dispatched to each tool in order.
	Tools []Tool

	// SchedSeed selects among legal interleavings: when non-zero, the
	// scheduler picks the next runnable thread pseudo-randomly (fair in
	// expectation) instead of round-robin. Execution remains fully
	// deterministic for a given seed; different seeds explore different
	// interleavings, the online analog of the trace merger's arbitrary
	// tie-breaking.
	SchedSeed int64

	// Unbatched disables the batched memory-event path: every Read/Write
	// fans out to each tool as its own interface call, as the machine
	// dispatched before batching existed. Tools observe identical event
	// streams either way (the differential tests hold the two modes
	// byte-identical); the flag exists so the unbatched dispatch cost
	// remains measurable and so batching bugs can be bisected.
	Unbatched bool

	// BatchMax caps how many memory events accumulate in the batch ring
	// before a flush. Zero selects the ring's full capacity (256); other
	// values are clamped to [2, 256]. Tools observe identical event
	// streams for every value — the cap changes only how the stream is
	// chopped into MemBatch calls — which makes it a don't-care parameter
	// the metamorphic invariant harness perturbs. Ignored in Unbatched
	// mode.
	BatchMax int

	// Telemetry, when non-nil, receives the machine's self-metrics
	// (guest/* counters: operations, memory events, batch flushes, thread
	// switches, kernel I/O) at the end of the run. The machine keeps plain
	// local tallies during execution and publishes them once, so enabling
	// telemetry adds no per-event atomic traffic; nil disables publication
	// entirely.
	Telemetry *telemetry.Registry
}

// DefaultTimeslice is the scheduler quantum, in guest operations, used when
// Config.Timeslice is zero.
const DefaultTimeslice = 100

// Machine is a virtual machine executing one guest program.
//
// A Machine is not safe for concurrent use; Run drives all guest threads on
// internal goroutines but serializes them, and must be called at most once.
type Machine struct {
	cfg   Config
	tools []Tool

	mem        *memory
	heap       *heap
	staticNext Addr

	routines     map[string]RoutineID
	routineNames []string

	syncNames []string

	threads []*Thread // index = ThreadID-1
	sched   scheduler

	ops uint64 // total guest operations (event timestamp source)

	running  ThreadID // currently executing thread, 0 if none
	aborted  error    // non-nil once the run failed (deadlock, guest panic)
	finished bool

	// Batched memory-event dispatch (see the emit helpers in tool.go).
	// direct selects per-event fan-out (Config.Unbatched, or no tools);
	// otherwise plain Read/Write events accumulate into the fixed-size
	// batch ring and flush at the next non-memory event.
	direct      bool
	sinks       []MemEventSink // parallel to tools; nil for legacy tools
	batchEdge   uint32         // flush trigger: BatchMax-2 (see the emit helpers)
	batch       [memBatchCap]MemEvent
	batchLen    uint32
	batchThread ThreadID // thread that issued the pending batch
	batchStart  uint64   // ops value of the batch's first event
	replaying   bool     // inside the legacy replay shim
	replayTS    uint64   // Now() override while replaying

	// Self-telemetry tallies (see Config.Telemetry). Plain counters: the
	// machine is serialized, and they are published to the registry only
	// at the end of the run. Memory events are tallied per batch flush,
	// not per event, so the batched hot path stays untouched.
	stats guestStats

	// Aux is scratch storage for guest-program frameworks built on top of
	// the machine (e.g. the workload library's OpenMP-style thread team).
	Aux any
}

// NewMachine returns a machine ready to Run a guest program under cfg.
func NewMachine(cfg Config) *Machine {
	if cfg.Timeslice <= 0 {
		cfg.Timeslice = DefaultTimeslice
	}
	m := &Machine{
		cfg:      cfg,
		tools:    cfg.Tools,
		mem:      newMemory(),
		routines: make(map[string]RoutineID),
	}
	m.direct = cfg.Unbatched || len(cfg.Tools) == 0
	batchMax := cfg.BatchMax
	if batchMax <= 0 || batchMax > memBatchCap {
		batchMax = memBatchCap
	}
	if batchMax < 2 {
		batchMax = 2
	}
	m.batchEdge = uint32(batchMax - 2)
	m.sinks = make([]MemEventSink, len(cfg.Tools))
	for i, tl := range cfg.Tools {
		m.sinks[i], _ = tl.(MemEventSink)
	}
	m.heap = newHeap(m)
	if cfg.SchedSeed != 0 {
		m.sched.rng = rand.New(rand.NewSource(cfg.SchedSeed))
	}
	return m
}

// RoutineName returns the interned name for id. It is valid during and after
// a run.
func (m *Machine) RoutineName(id RoutineID) string {
	if int(id) >= len(m.routineNames) {
		return fmt.Sprintf("routine#%d", id)
	}
	return m.routineNames[id]
}

// RoutineIDByName reports the id interned for name, if any.
func (m *Machine) RoutineIDByName(name string) (RoutineID, bool) {
	id, ok := m.routines[name]
	return id, ok
}

// NumRoutines returns the number of interned routine names.
func (m *Machine) NumRoutines() int { return len(m.routineNames) }

// SyncName returns a diagnostic name for a synchronization object.
func (m *Machine) SyncName(id SyncID) string {
	if int(id) >= len(m.syncNames) {
		return fmt.Sprintf("sync#%d", id)
	}
	return m.syncNames[id]
}

// Ops returns the total number of guest operations executed so far. It is
// the timestamp source for trace recording.
func (m *Machine) Ops() uint64 { return m.ops }

// Now implements Env: the current event timestamp is the operation counter.
// While the batching shim replays buffered memory events to a legacy tool,
// Now reports the replayed event's own timestamp instead, so tools that
// record timestamps are oblivious to batching.
func (m *Machine) Now() uint64 {
	if m.replaying {
		return m.replayTS
	}
	return m.ops
}

// NumSyncs returns the number of synchronization objects created so far.
func (m *Machine) NumSyncs() int { return len(m.syncNames) }

// BBTotal returns the total number of basic blocks executed by all threads.
// It is computed by summing the per-thread counters, which keeps a
// machine-global read-modify-write off the per-operation path.
func (m *Machine) BBTotal() uint64 {
	var total uint64
	for _, th := range m.threads {
		total += th.bb
	}
	return total
}

// NumThreads returns the number of guest threads ever started.
func (m *Machine) NumThreads() int { return len(m.threads) }

// MemoryFootprint returns the number of distinct memory pages touched and the
// number of words they hold, a proxy for the native memory of the guest.
func (m *Machine) MemoryFootprint() (pages int, words int) {
	return m.mem.footprint()
}

func (m *Machine) intern(name string) RoutineID {
	if id, ok := m.routines[name]; ok {
		return id
	}
	id := RoutineID(len(m.routineNames))
	m.routines[name] = id
	m.routineNames = append(m.routineNames, name)
	return id
}

func (m *Machine) newSyncID(name string) SyncID {
	id := SyncID(len(m.syncNames))
	m.syncNames = append(m.syncNames, name)
	return id
}

// Run executes body as the main guest thread and returns once every guest
// thread has terminated. It returns an error if the guest deadlocks or a
// guest thread panics.
func (m *Machine) Run(body func(*Thread)) error {
	if m.finished {
		return fmt.Errorf("guest: machine already ran")
	}
	for _, t := range m.tools {
		t.Attach(m)
	}
	main := m.newThread(0, "main", body)
	m.sched.setRunning(main)
	m.running = main.id
	m.emitThreadStart(main.id, 0)
	main.resume <- struct{}{}
	<-m.sched.done
	m.finished = true
	m.flushMem()
	for _, t := range m.tools {
		t.Finish()
	}
	m.publishTelemetry()
	return m.aborted
}

// guestStats holds the machine's plain (non-atomic) self-metric tallies.
type guestStats struct {
	memEvents    uint64 // memory events dispatched to tools (incl. kernel I/O)
	kernelEvents uint64 // kernel-mediated subset of memEvents
	flushes      uint64 // batch flushes (batched mode only)
	switches     uint64 // scheduler handoffs
	calls        uint64 // routine activations
	returns      uint64 // routine completions
}

// publishTelemetry pushes the end-of-run tallies into Config.Telemetry.
// Counters accumulate, so several machines sharing one registry (e.g. an
// experiment sweep) sum their totals.
func (m *Machine) publishTelemetry() {
	reg := m.cfg.Telemetry
	if reg == nil {
		return
	}
	reg.Counter("guest/ops").Add(m.ops)
	reg.Counter("guest/bb_total").Add(m.BBTotal())
	reg.Counter("guest/mem_events").Add(m.stats.memEvents)
	reg.Counter("guest/kernel_io").Add(m.stats.kernelEvents)
	reg.Counter("guest/batch_flushes").Add(m.stats.flushes)
	reg.Counter("guest/thread_switches").Add(m.stats.switches)
	reg.Counter("guest/calls").Add(m.stats.calls)
	reg.Counter("guest/returns").Add(m.stats.returns)
	reg.Counter("guest/threads_started").Add(uint64(len(m.threads)))
	reg.Gauge("guest/routines").Set(int64(len(m.routineNames)))
	reg.Gauge("guest/sync_objects").Set(int64(len(m.syncNames)))
}

func (m *Machine) newThread(parent ThreadID, name string, body func(*Thread)) *Thread {
	th := &Thread{
		m:      m,
		id:     ThreadID(len(m.threads) + 1),
		name:   name,
		parent: parent,
		resume: make(chan struct{}, 1),
	}
	th.syncID = m.newSyncID("thread:" + name)
	m.threads = append(m.threads, th)
	if m.sched.done == nil {
		m.sched.done = make(chan struct{})
	}
	m.sched.live++
	go th.run(body)
	return th
}

// abort marks the run as failed and unblocks every guest thread other than
// the aborting one so their goroutines can unwind. State is deliberately
// ignored: a tool panic can unwind mid-handoff, leaving the handoff target
// marked running while it is still parked on its resume channel, so every
// peer gets a (buffered) wake-up token. Threads check for abortion after
// every park, turning the token into an unwinding panic.
func (m *Machine) abort(err error, self *Thread) {
	if m.aborted == nil {
		m.aborted = err
	}
	for _, th := range m.threads {
		if th == self || th.state == threadDone {
			continue
		}
		select {
		case th.resume <- struct{}{}:
		default:
		}
	}
}

// deadlockState formats the blocked-thread graph for deadlock errors.
func (m *Machine) deadlockState() string {
	var parts []string
	for _, th := range m.threads {
		if th.state == threadBlocked {
			parts = append(parts, fmt.Sprintf("%s(#%d) blocked on %s", th.name, th.id, th.blockedOn))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "no blocked threads"
	}
	return fmt.Sprint(parts)
}
