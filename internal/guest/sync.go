package guest

// Synchronization primitives for guest threads. They are implemented inside
// the machine (not over guest memory ops) but report acquire/release events
// to tools, mirroring how Valgrind tools intercept pthread primitives.

// Sem is a counting semaphore.
type Sem struct {
	m       *Machine
	id      SyncID
	name    string
	label   string // precomputed blocked-on label (avoids per-block allocation)
	count   int
	waiters []*Thread
}

// NewSem returns a semaphore with the given initial count.
func (m *Machine) NewSem(name string, count int) *Sem {
	if count < 0 {
		panic("guest: negative semaphore count")
	}
	label := "sem:" + name
	return &Sem{m: m, id: m.newSyncID(label), name: name, label: label, count: count}
}

// P performs the wait (down) operation on s, blocking while its count is 0.
func (th *Thread) P(s *Sem) {
	th.step()
	for s.count == 0 {
		s.waiters = append(s.waiters, th)
		th.block(s.label)
	}
	s.count--
	th.m.emitSync(th.id, SyncAcquire, s.id)
}

// V performs the signal (up) operation on s.
func (th *Thread) V(s *Sem) {
	th.step()
	th.m.emitSync(th.id, SyncRelease, s.id)
	s.count++
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		copy(s.waiters, s.waiters[1:])
		s.waiters = s.waiters[:len(s.waiters)-1]
		th.m.wake(w)
	}
}

// Mutex is a mutual-exclusion lock.
type Mutex struct {
	m       *Machine
	id      SyncID
	name    string
	label   string // precomputed blocked-on label
	owner   *Thread
	waiters []*Thread
}

// NewMutex returns an unlocked mutex.
func (m *Machine) NewMutex(name string) *Mutex {
	label := "mutex:" + name
	return &Mutex{m: m, id: m.newSyncID(label), name: name, label: label}
}

// Lock acquires mu, blocking while another thread holds it.
func (th *Thread) Lock(mu *Mutex) {
	th.step()
	th.lockSlow(mu)
}

func (th *Thread) lockSlow(mu *Mutex) {
	if mu.owner == th {
		panic("guest: recursive Lock of mutex " + mu.name)
	}
	for mu.owner != nil {
		mu.waiters = append(mu.waiters, th)
		th.block(mu.label)
	}
	mu.owner = th
	th.m.emitSync(th.id, SyncAcquire, mu.id)
}

// Unlock releases mu, which must be held by the calling thread.
func (th *Thread) Unlock(mu *Mutex) {
	th.step()
	th.unlockSlow(mu)
}

func (th *Thread) unlockSlow(mu *Mutex) {
	if mu.owner != th {
		panic("guest: Unlock of mutex " + mu.name + " not held by caller")
	}
	th.m.emitSync(th.id, SyncRelease, mu.id)
	mu.owner = nil
	if len(mu.waiters) > 0 {
		w := mu.waiters[0]
		copy(mu.waiters, mu.waiters[1:])
		mu.waiters = mu.waiters[:len(mu.waiters)-1]
		th.m.wake(w)
	}
}

// WithLock runs body while holding mu.
func (th *Thread) WithLock(mu *Mutex, body func()) {
	th.Lock(mu)
	body()
	th.Unlock(mu)
}

// Cond is a condition variable with Mesa semantics: Wait may wake spuriously
// with respect to the condition, so callers re-check in a loop.
type Cond struct {
	m       *Machine
	id      SyncID
	name    string
	label   string // precomputed blocked-on label
	waiters []*Thread
}

// NewCond returns a condition variable.
func (m *Machine) NewCond(name string) *Cond {
	label := "cond:" + name
	return &Cond{m: m, id: m.newSyncID(label), name: name, label: label}
}

// Wait atomically releases mu and parks on c; once woken it re-acquires mu
// before returning.
func (th *Thread) Wait(c *Cond, mu *Mutex) {
	th.step()
	th.unlockSlow(mu)
	c.waiters = append(c.waiters, th)
	th.block(c.label)
	th.m.emitSync(th.id, SyncAcquire, c.id)
	th.lockSlow(mu)
}

// Signal wakes one waiter of c, if any.
func (th *Thread) Signal(c *Cond) {
	th.step()
	th.m.emitSync(th.id, SyncRelease, c.id)
	if len(c.waiters) > 0 {
		w := c.waiters[0]
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		th.m.wake(w)
	}
}

// Broadcast wakes every waiter of c.
func (th *Thread) Broadcast(c *Cond) {
	th.step()
	th.m.emitSync(th.id, SyncRelease, c.id)
	for _, w := range c.waiters {
		th.m.wake(w)
	}
	c.waiters = c.waiters[:0]
}

// Barrier blocks groups of n threads until all have arrived.
type Barrier struct {
	m       *Machine
	id      SyncID
	name    string
	label   string // precomputed blocked-on label
	n       int
	arrived int
	gen     uint64
	waiters []*Thread
}

// NewBarrier returns a barrier for groups of n threads.
func (m *Machine) NewBarrier(name string, n int) *Barrier {
	if n <= 0 {
		panic("guest: barrier size must be positive")
	}
	label := "barrier:" + name
	return &Barrier{m: m, id: m.newSyncID(label), name: name, label: label, n: n}
}

// Arrive blocks until n threads (including the caller) have arrived at the
// barrier's current generation.
func (th *Thread) Arrive(b *Barrier) {
	th.step()
	th.m.emitSync(th.id, SyncRelease, b.id)
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiters {
			th.m.wake(w)
		}
		b.waiters = b.waiters[:0]
		th.m.emitSync(th.id, SyncAcquire, b.id)
		return
	}
	gen := b.gen
	for b.gen == gen {
		b.waiters = append(b.waiters, th)
		th.block(b.label)
	}
	th.m.emitSync(th.id, SyncAcquire, b.id)
}

// RWLock is a readers-writer lock: any number of readers or one writer.
// For happens-before analyses, write-unlock releases and every lock
// operation acquires; read-unlock also releases, which over-approximates
// ordering between readers (harmless: concurrent reads cannot race).
type RWLock struct {
	m       *Machine
	id      SyncID
	name    string
	rlabel  string // precomputed blocked-on labels
	wlabel  string
	readers int
	writer  *Thread
	waiters []*Thread
}

// NewRWLock returns an unlocked readers-writer lock.
func (m *Machine) NewRWLock(name string) *RWLock {
	return &RWLock{m: m, id: m.newSyncID("rwlock:" + name), name: name,
		rlabel: "rwlock-r:" + name, wlabel: "rwlock-w:" + name}
}

// RLock acquires the lock for reading, blocking while a writer holds it.
func (th *Thread) RLock(rw *RWLock) {
	th.step()
	for rw.writer != nil {
		rw.waiters = append(rw.waiters, th)
		th.block(rw.rlabel)
	}
	rw.readers++
	th.m.emitSync(th.id, SyncAcquire, rw.id)
}

// RUnlock releases a read hold.
func (th *Thread) RUnlock(rw *RWLock) {
	th.step()
	if rw.readers <= 0 {
		panic("guest: RUnlock of rwlock " + rw.name + " with no readers")
	}
	th.m.emitSync(th.id, SyncRelease, rw.id)
	rw.readers--
	if rw.readers == 0 {
		rw.wakeAll(th)
	}
}

// WLock acquires the lock for writing, blocking while readers or another
// writer hold it.
func (th *Thread) WLock(rw *RWLock) {
	th.step()
	if rw.writer == th {
		panic("guest: recursive WLock of rwlock " + rw.name)
	}
	for rw.writer != nil || rw.readers > 0 {
		rw.waiters = append(rw.waiters, th)
		th.block(rw.wlabel)
	}
	rw.writer = th
	th.m.emitSync(th.id, SyncAcquire, rw.id)
}

// WUnlock releases the write hold.
func (th *Thread) WUnlock(rw *RWLock) {
	th.step()
	if rw.writer != th {
		panic("guest: WUnlock of rwlock " + rw.name + " not held by caller")
	}
	th.m.emitSync(th.id, SyncRelease, rw.id)
	rw.writer = nil
	rw.wakeAll(th)
}

func (rw *RWLock) wakeAll(th *Thread) {
	for _, w := range rw.waiters {
		th.m.wake(w)
	}
	rw.waiters = rw.waiters[:0]
}
