package guest

import "fmt"

// Thread is a guest thread. All guest-visible actions — routine activations,
// memory accesses, synchronization, I/O — go through Thread methods, which
// report them to the attached tools. A Thread must only be used from the
// guest function it was handed to.
type Thread struct {
	m      *Machine
	id     ThreadID
	name   string
	parent ThreadID
	syncID SyncID // implicit sync object released at exit, acquired by Join

	state     threadState
	blockedOn string
	resume    chan struct{}

	bb    uint64 // cumulative basic blocks executed by this thread
	slice int    // remaining scheduler quantum, in guest operations

	stack   []RoutineID
	joiners []*Thread
}

// ID returns the thread's identifier. The main thread is 1.
func (th *Thread) ID() ThreadID { return th.id }

// Name returns the thread's diagnostic name.
func (th *Thread) Name() string { return th.name }

// Machine returns the machine executing this thread.
func (th *Thread) Machine() *Machine { return th.m }

// BB returns the thread's cumulative basic-block count.
func (th *Thread) BB() uint64 { return th.bb }

// Depth returns the current call-stack depth.
func (th *Thread) Depth() int { return len(th.stack) }

// run is the goroutine body hosting a guest thread.
func (th *Thread) run(body func(*Thread)) {
	<-th.resume
	defer func() {
		if r := recover(); r != nil && r != errAborted { //nolint:errorlint // sentinel identity is intended
			th.m.abort(fmt.Errorf("guest: thread %s(#%d) panicked: %v", th.name, th.id, r), th)
		}
		th.exit()
	}()
	th.slice = th.m.cfg.Timeslice
	th.checkAborted()
	body(th)
	if len(th.stack) != 0 {
		panic(fmt.Sprintf("guest: thread %s exited with %d unreturned routine activations", th.name, len(th.stack)))
	}
}

// exit retires the thread: it reports the exit, wakes joiners, and either
// hands off to the next runnable thread or, if it was the last live thread,
// completes the run.
func (th *Thread) exit() {
	m := th.m
	th.state = threadDone

	m.sched.exitMu.Lock()
	m.sched.live--
	last := m.sched.live == 0
	m.sched.exitMu.Unlock()

	if m.aborted != nil {
		if last {
			close(m.sched.done)
		}
		return
	}

	m.emitSync(th.id, SyncRelease, th.syncID)
	m.emitThreadExit(th.id)
	for _, j := range th.joiners {
		m.wake(j)
	}
	th.joiners = nil

	if last {
		close(m.sched.done)
		return
	}
	next := m.sched.pick()
	if next == nil {
		m.abort(fmt.Errorf("guest: deadlock after thread %s(#%d) exited: %s", th.name, th.id, m.deadlockState()), th)
		return
	}
	m.handoff(th, next)
}

// step accounts one guest operation's basic block and runs the scheduler
// quantum. Every Thread operation calls it exactly once. The rare cases
// (quantum expired, machine aborted) share one predicted-untaken branch so
// the common path stays under the inlining budget.
func (th *Thread) step() {
	th.bb++
	th.slice--
	if th.slice <= 0 || th.m.aborted != nil {
		th.stepSlow()
	}
}

// stepSlow must stay out of line so step itself fits the inlining budget.
//
//go:noinline
func (th *Thread) stepSlow() {
	th.checkAborted()
	if th.slice <= 0 {
		th.yield()
	}
}

// Exec accounts for n basic blocks of pure computation (no memory traffic).
func (th *Thread) Exec(n int) {
	if n <= 0 {
		th.checkAborted()
		return
	}
	th.bb += uint64(n)
	th.slice--
	if th.slice <= 0 || th.m.aborted != nil {
		th.stepSlow()
	}
}

// Yield voluntarily releases the processor to the next runnable thread.
func (th *Thread) Yield() {
	th.checkAborted()
	th.yield()
}

// Call activates the routine with the given name.
func (th *Thread) Call(name string) {
	th.step()
	id := th.m.intern(name)
	th.stack = append(th.stack, id)
	th.m.emitCall(th.id, id, th.bb)
}

// Return completes the topmost routine activation.
func (th *Thread) Return() {
	th.step()
	if len(th.stack) == 0 {
		panic("guest: Return with empty call stack")
	}
	id := th.stack[len(th.stack)-1]
	th.stack = th.stack[:len(th.stack)-1]
	th.m.emitReturn(th.id, id, th.bb)
}

// Fn runs body as an activation of the named routine.
func (th *Thread) Fn(name string, body func()) {
	th.Call(name)
	body()
	th.Return()
}

// Load reads the memory cell at a and returns its value.
func (th *Thread) Load(a Addr) uint64 {
	th.step()
	v := th.m.mem.load(a)
	th.m.emitRead(th.id, a)
	return v
}

// Store writes v to the memory cell at a.
func (th *Thread) Store(a Addr, v uint64) {
	th.step()
	th.m.mem.store(a, v)
	th.m.emitWrite(th.id, a)
}

// Spawn starts a new guest thread running body and returns its handle.
func (th *Thread) Spawn(name string, body func(*Thread)) *Thread {
	th.step()
	child := th.m.newThread(th.id, name, body)
	th.m.emitThreadStart(child.id, th.id)
	th.m.sched.enqueue(child)
	return child
}

// Join blocks until the given thread has exited.
func (th *Thread) Join(other *Thread) {
	th.step()
	if other.m != th.m {
		panic("guest: Join across machines")
	}
	for other.state != threadDone {
		other.joiners = append(other.joiners, th)
		th.block("join:" + other.name)
	}
	th.m.emitSync(th.id, SyncAcquire, other.syncID)
}
