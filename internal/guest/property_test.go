package guest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickSchedulerDeterminism: for random well-formed programs (structured
// sync, balanced calls), two executions produce identical operation counts,
// basic-block totals, and final memory states.
func TestQuickSchedulerDeterminism(t *testing.T) {
	f := func(seed int64, timeslice8 uint8, threads3 uint8) bool {
		timeslice := int(timeslice8%31) + 1
		threads := int(threads3%4) + 1
		run := func() (uint64, uint64, uint64) {
			m := NewMachine(Config{Timeslice: timeslice})
			cells := m.Static(16)
			mu := m.NewMutex("mu")
			err := m.Run(func(th *Thread) {
				var kids []*Thread
				for w := 0; w < threads; w++ {
					rng := rand.New(rand.NewSource(seed + int64(w)))
					kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
						c.Fn("work", func() {
							for op := 0; op < 60; op++ {
								cell := cells + Addr(rng.Intn(16))
								switch rng.Intn(4) {
								case 0:
									c.Load(cell)
								case 1:
									c.Store(cell, uint64(op))
								case 2:
									c.WithLock(mu, func() {
										c.Store(cell, c.Load(cell)+1)
									})
								default:
									c.Exec(rng.Intn(5) + 1)
								}
							}
						})
					}))
				}
				for _, k := range kids {
					th.Join(k)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			sum := uint64(0)
			for i := Addr(0); i < 16; i++ {
				sum = sum*31 + m.Peek(cells+i)
			}
			return m.Ops(), m.BBTotal(), sum
		}
		o1, b1, s1 := run()
		o2, b2, s2 := run()
		return o1 == o2 && b1 == b2 && s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSemaphoreConservation: random producer/consumer counts with
// matching totals always complete, and every produced value is consumed.
func TestQuickSemaphoreConservation(t *testing.T) {
	f := func(nProd8, nCons8, slice8 uint8) bool {
		producers := int(nProd8%3) + 1
		consumers := int(nCons8%3) + 1
		perProducer := 12
		total := producers * perProducer
		// Distribute consumption across consumers.
		base := total / consumers
		rem := total % consumers

		m := NewMachine(Config{Timeslice: int(slice8%17) + 1})
		q := m.NewQueue("q", 3)
		var consumed uint64
		err := m.Run(func(th *Thread) {
			var kids []*Thread
			for p := 0; p < producers; p++ {
				p := p
				kids = append(kids, th.Spawn(fmt.Sprintf("p%d", p), func(c *Thread) {
					for i := 0; i < perProducer; i++ {
						c.Put(q, uint64(p*perProducer+i)+1)
					}
				}))
			}
			for cns := 0; cns < consumers; cns++ {
				n := base
				if cns < rem {
					n++
				}
				kids = append(kids, th.Spawn(fmt.Sprintf("c%d", cns), func(c *Thread) {
					for i := 0; i < n; i++ {
						v, ok := c.Get(q)
						if !ok || v == 0 {
							t.Error("consumer got closed/zero value")
							return
						}
						consumed++
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		return err == nil && consumed == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickBarrierGenerations: with random worker counts and phases, every
// worker observes all marks of the previous phase.
func TestQuickBarrierGenerations(t *testing.T) {
	f := func(w8, ph8, slice8 uint8) bool {
		workers := int(w8%5) + 2
		phases := int(ph8%4) + 2
		m := NewMachine(Config{Timeslice: int(slice8%7) + 1})
		bar := m.NewBarrier("b", workers)
		marks := m.Static(workers * phases)
		ok := true
		err := m.Run(func(th *Thread) {
			var kids []*Thread
			for w := 0; w < workers; w++ {
				w := w
				kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
					for ph := 0; ph < phases; ph++ {
						if ph > 0 {
							for i := 0; i < workers; i++ {
								if c.Load(marks+Addr((ph-1)*workers+i)) != uint64(ph) {
									ok = false
								}
							}
						}
						c.Store(marks+Addr(ph*workers+w), uint64(ph+1))
						c.Arrive(bar)
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickMemoryIsolation: values stored at distinct addresses never bleed
// into each other across pages and the heap.
func TestQuickMemoryIsolation(t *testing.T) {
	f := func(addrs []uint32, vals []uint16) bool {
		if len(addrs) == 0 {
			return true
		}
		if len(vals) < len(addrs) {
			return true
		}
		m := NewMachine(Config{})
		ref := make(map[Addr]uint64)
		err := m.Run(func(th *Thread) {
			for i, a32 := range addrs {
				a := Addr(a32)
				v := uint64(vals[i]) + 1
				th.Store(a, v)
				ref[a] = v
			}
		})
		if err != nil {
			return false
		}
		for a, v := range ref {
			if m.Peek(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestJoinAlreadyDead: joining a thread that already exited returns
// immediately (regression guard for the joiner bookkeeping).
func TestJoinAlreadyDead(t *testing.T) {
	m := NewMachine(Config{})
	err := m.Run(func(th *Thread) {
		k := th.Spawn("quick", func(c *Thread) { c.Exec(1) })
		// Let the child run to completion first.
		for i := 0; i < 10; i++ {
			th.Yield()
		}
		th.Join(k) // child already dead
		th.Join(k) // double join is fine
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCondBroadcastWakesAll ensures no waiter is lost on broadcast.
func TestCondBroadcastWakesAll(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	mu := m.NewMutex("mu")
	cond := m.NewCond("cv")
	flag := m.Static(1)
	woken := m.Static(1)
	const waiters = 5
	err := m.Run(func(th *Thread) {
		var kids []*Thread
		for w := 0; w < waiters; w++ {
			kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
				c.Lock(mu)
				for c.Load(flag) == 0 {
					c.Wait(cond, mu)
				}
				c.Store(woken, c.Load(woken)+1)
				c.Unlock(mu)
			}))
		}
		// Give waiters time to park.
		for i := 0; i < 50; i++ {
			th.Yield()
		}
		th.Lock(mu)
		th.Store(flag, 1)
		th.Broadcast(cond)
		th.Unlock(mu)
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(woken); got != waiters {
		t.Errorf("woken = %d, want %d", got, waiters)
	}
}

// TestSeededSchedulingDeterministicPerSeed: the same seed reproduces the
// same interleaving; different seeds (usually) differ.
func TestSeededSchedulingDeterministicPerSeed(t *testing.T) {
	signature := func(seed int64) string {
		rec := &recorder{}
		m := NewMachine(Config{Timeslice: 2, SchedSeed: seed, Tools: []Tool{rec}})
		cells := m.Static(8)
		err := m.Run(func(th *Thread) {
			var kids []*Thread
			for w := 0; w < 3; w++ {
				base := cells + Addr(w)
				kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
					for i := 0; i < 20; i++ {
						c.Store(base, uint64(i))
						c.Load(base)
					}
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(rec.events, "\n")
	}
	if signature(7) != signature(7) {
		t.Error("same seed produced different interleavings")
	}
	diverged := false
	for seed := int64(1); seed <= 8; seed++ {
		if signature(seed) != signature(seed+100) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("8 seed pairs all produced identical interleavings")
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	rw := m.NewRWLock("data")
	data := m.Static(1)
	concurrent := m.Static(1) // max readers observed inside the lock
	inside := 0
	err := m.Run(func(th *Thread) {
		var kids []*Thread
		for r := 0; r < 3; r++ {
			kids = append(kids, th.Spawn(fmt.Sprintf("r%d", r), func(c *Thread) {
				for i := 0; i < 10; i++ {
					c.RLock(rw)
					inside++
					if uint64(inside) > c.Load(concurrent) {
						c.Store(concurrent, uint64(inside))
					}
					c.Load(data)
					inside--
					c.RUnlock(rw)
				}
			}))
		}
		kids = append(kids, th.Spawn("w", func(c *Thread) {
			for i := 0; i < 10; i++ {
				c.WLock(rw)
				if inside != 0 {
					t.Error("writer entered with readers inside")
				}
				c.Store(data, uint64(i))
				c.WUnlock(rw)
			}
		}))
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(concurrent); got < 2 {
		t.Errorf("max concurrent readers = %d, want >= 2 (readers never overlapped)", got)
	}
}

func TestRWLockMisuse(t *testing.T) {
	m := NewMachine(Config{})
	rw := m.NewRWLock("x")
	if err := m.Run(func(th *Thread) { th.RUnlock(rw) }); err == nil {
		t.Error("RUnlock without RLock succeeded")
	}
	m2 := NewMachine(Config{})
	rw2 := m2.NewRWLock("y")
	if err := m2.Run(func(th *Thread) { th.WUnlock(rw2) }); err == nil {
		t.Error("WUnlock without WLock succeeded")
	}
}
