package guest

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder is a Tool that captures the event stream as strings.
type recorder struct {
	BaseTool
	env    Env
	events []string
}

func (r *recorder) Attach(env Env) { r.env = env }

func (r *recorder) add(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

func (r *recorder) Call(t ThreadID, rt RoutineID, bb uint64) {
	r.add("call t%d %s", t, r.env.RoutineName(rt))
}
func (r *recorder) Return(t ThreadID, rt RoutineID, bb uint64) {
	r.add("ret t%d %s", t, r.env.RoutineName(rt))
}
func (r *recorder) Read(t ThreadID, a Addr)        { r.add("read t%d %d", t, a) }
func (r *recorder) Write(t ThreadID, a Addr)       { r.add("write t%d %d", t, a) }
func (r *recorder) KernelRead(t ThreadID, a Addr)  { r.add("kread t%d %d", t, a) }
func (r *recorder) KernelWrite(t ThreadID, a Addr) { r.add("kwrite t%d %d", t, a) }
func (r *recorder) SwitchThread(from, to ThreadID) { r.add("switch t%d->t%d", from, to) }
func (r *recorder) ThreadStart(t, p ThreadID)      { r.add("start t%d parent t%d", t, p) }
func (r *recorder) ThreadExit(t ThreadID)          { r.add("exit t%d", t) }
func (r *recorder) Sync(t ThreadID, k SyncKind, s SyncID) {
	r.add("sync t%d %s %s", t, k, r.env.SyncName(s))
}
func (r *recorder) Alloc(t ThreadID, base Addr, n int) { r.add("alloc t%d %d+%d", t, base, n) }
func (r *recorder) Free(t ThreadID, base Addr, n int)  { r.add("free t%d %d+%d", t, base, n) }

func (r *recorder) joined() string { return strings.Join(r.events, "\n") }

func TestSingleThreadEvents(t *testing.T) {
	rec := &recorder{}
	m := NewMachine(Config{Tools: []Tool{rec}})
	err := m.Run(func(th *Thread) {
		th.Fn("main", func() {
			th.Store(10, 42)
			if v := th.Load(10); v != 42 {
				t.Errorf("Load(10) = %d, want 42", v)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"start t1 parent t0",
		"call t1 main",
		"write t1 10",
		"read t1 10",
		"ret t1 main",
		"sync t1 release thread:main",
		"exit t1",
	}, "\n")
	if got := rec.joined(); got != want {
		t.Errorf("event stream:\n%s\nwant:\n%s", got, want)
	}
}

func TestBBAccounting(t *testing.T) {
	m := NewMachine(Config{})
	var atCall, atRet uint64
	err := m.Run(func(th *Thread) {
		th.Call("f")
		atCall = th.BB()
		th.Exec(100)
		th.Store(1, 1)
		th.Return()
		atRet = th.BB()
	})
	if err != nil {
		t.Fatal(err)
	}
	if atCall != 1 {
		t.Errorf("bb at call = %d, want 1", atCall)
	}
	// call(1) + exec(100) + store(1) + return(1)
	if atRet != 103 {
		t.Errorf("bb at return = %d, want 103", atRet)
	}
	if m.BBTotal() != 103 {
		t.Errorf("BBTotal = %d, want 103", m.BBTotal())
	}
}

func TestSpawnJoinOrdering(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	var order []string
	err := m.Run(func(th *Thread) {
		child := th.Spawn("child", func(c *Thread) {
			c.Fn("work", func() {
				c.Store(100, 7)
				order = append(order, "child")
			})
		})
		th.Join(child)
		order = append(order, "parent")
		if v := m.Peek(100); v != 7 {
			t.Errorf("child store not visible: %d", v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "child,parent" {
		t.Errorf("order = %s, want child,parent", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		rec := &recorder{}
		m := NewMachine(Config{Timeslice: 3, Tools: []Tool{rec}})
		err := m.Run(func(th *Thread) {
			var kids []*Thread
			for i := 0; i < 4; i++ {
				base := Addr(1000 * (i + 1))
				kids = append(kids, th.Spawn(fmt.Sprintf("w%d", i), func(c *Thread) {
					c.Fn("work", func() {
						for j := 0; j < 20; j++ {
							c.Store(base+Addr(j), uint64(j))
							c.Load(base + Addr(j))
						}
					})
				}))
			}
			for _, k := range kids {
				th.Join(k)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec.events
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Error("two identical runs produced different event streams")
	}
}

func TestTimesliceRotation(t *testing.T) {
	// With timeslice 2 and two busy threads, switches must interleave work.
	rec := &recorder{}
	m := NewMachine(Config{Timeslice: 2, Tools: []Tool{rec}})
	err := m.Run(func(th *Thread) {
		c := th.Spawn("busy", func(c *Thread) {
			for i := 0; i < 10; i++ {
				c.Store(Addr(2000+i), 1)
			}
		})
		for i := 0; i < 10; i++ {
			th.Store(Addr(3000+i), 1)
		}
		th.Join(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for _, e := range rec.events {
		if strings.HasPrefix(e, "switch") {
			switches++
		}
	}
	if switches < 5 {
		t.Errorf("only %d thread switches with timeslice 2; want interleaving", switches)
	}
}

func TestMutexExclusionAndCounter(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	mu := m.NewMutex("ctr")
	ctr := m.Static(1)
	const perThread = 50
	err := m.Run(func(th *Thread) {
		var kids []*Thread
		for i := 0; i < 4; i++ {
			kids = append(kids, th.Spawn(fmt.Sprintf("inc%d", i), func(c *Thread) {
				for j := 0; j < perThread; j++ {
					c.WithLock(mu, func() {
						c.Store(ctr, c.Load(ctr)+1)
					})
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Peek(ctr); got != 4*perThread {
		t.Errorf("counter = %d, want %d", got, 4*perThread)
	}
}

func TestSemProducerConsumer(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	empty := m.NewSem("empty", 1)
	full := m.NewSem("full", 0)
	cell := m.Static(1)
	const n = 25
	var sum uint64
	err := m.Run(func(th *Thread) {
		prod := th.Spawn("producer", func(p *Thread) {
			for i := uint64(1); i <= n; i++ {
				p.P(empty)
				p.Store(cell, i)
				p.V(full)
			}
		})
		cons := th.Spawn("consumer", func(c *Thread) {
			for i := 0; i < n; i++ {
				c.P(full)
				sum += c.Load(cell)
				c.V(empty)
			}
		})
		th.Join(prod)
		th.Join(cons)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(n * (n + 1) / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestCondQueue(t *testing.T) {
	m := NewMachine(Config{Timeslice: 2})
	q := m.NewQueue("q", 4)
	const n = 40
	var got []uint64
	err := m.Run(func(th *Thread) {
		prod := th.Spawn("prod", func(p *Thread) {
			for i := uint64(0); i < n; i++ {
				p.Put(q, i*i)
			}
			p.Close(q)
		})
		cons := th.Spawn("cons", func(c *Thread) {
			for {
				v, ok := c.Get(q)
				if !ok {
					return
				}
				got = append(got, v)
			}
		})
		th.Join(prod)
		th.Join(cons)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("consumed %d values, want %d", len(got), n)
	}
	for i, v := range got {
		if v != uint64(i*i) {
			t.Fatalf("got[%d] = %d, want %d (FIFO order violated)", i, v, i*i)
		}
	}
}

func TestBarrierPhases(t *testing.T) {
	m := NewMachine(Config{Timeslice: 1})
	const workers, phases = 4, 5
	bar := m.NewBarrier("phase", workers)
	marks := m.Static(workers * phases)
	err := m.Run(func(th *Thread) {
		var kids []*Thread
		for w := 0; w < workers; w++ {
			kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
				for ph := 0; ph < phases; ph++ {
					// Every worker checks that all marks of the previous
					// phase are set before writing its own.
					if ph > 0 {
						for i := 0; i < workers; i++ {
							if c.Load(marks+Addr((ph-1)*workers+i)) != 1 {
								t.Errorf("worker saw incomplete phase %d", ph-1)
							}
						}
					}
					c.Store(marks+Addr(ph*workers+w), 1)
					c.Arrive(bar)
				}
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := NewMachine(Config{})
	s := m.NewSem("never", 0)
	err := m.Run(func(th *Thread) {
		th.P(s) // nobody will ever V
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock error", err)
	}
}

func TestGuestPanicBecomesError(t *testing.T) {
	m := NewMachine(Config{})
	err := m.Run(func(th *Thread) {
		panic("boom")
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want panic error", err)
	}
}

func TestUnbalancedCallIsError(t *testing.T) {
	m := NewMachine(Config{})
	err := m.Run(func(th *Thread) {
		th.Call("f") // never returns
	})
	if err == nil || !strings.Contains(err.Error(), "unreturned") {
		t.Errorf("err = %v, want unreturned-activation error", err)
	}
}

func TestDeviceStreams(t *testing.T) {
	rec := &recorder{}
	m := NewMachine(Config{Tools: []Tool{rec}})
	dev := m.NewDevice("disk", func(i uint64) uint64 { return i + 100 })
	buf := m.Static(4)
	err := m.Run(func(th *Thread) {
		th.Fn("io", func() {
			th.ReadDevice(dev, buf, 4)
			sum := uint64(0)
			for i := 0; i < 4; i++ {
				sum += th.Load(buf + Addr(i))
			}
			th.Store(buf, sum)
			th.WriteDevice(dev, buf, 1)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if dev.Consumed() != 4 {
		t.Errorf("device consumed %d, want 4", dev.Consumed())
	}
	if dev.Written() != 1 {
		t.Errorf("device written %d, want 1", dev.Written())
	}
	if got := m.Peek(buf); got != 100+101+102+103 {
		t.Errorf("sum = %d", got)
	}
	var kws, krs int
	for _, e := range rec.events {
		if strings.HasPrefix(e, "kwrite") {
			kws++
		}
		if strings.HasPrefix(e, "kread") {
			krs++
		}
	}
	if kws != 4 || krs != 1 {
		t.Errorf("kernel events: %d writes, %d reads; want 4, 1", kws, krs)
	}
}

func TestAllocFree(t *testing.T) {
	rec := &recorder{}
	m := NewMachine(Config{Tools: []Tool{rec}})
	err := m.Run(func(th *Thread) {
		a := th.Alloc(8)
		b := th.Alloc(8)
		if a == b {
			t.Error("Alloc returned overlapping blocks")
		}
		th.Store(a, 1)
		th.Free(a)
		th.Free(b)
	})
	if err != nil {
		t.Fatal(err)
	}
	var allocs, frees int
	for _, e := range rec.events {
		if strings.HasPrefix(e, "alloc") {
			allocs++
		}
		if strings.HasPrefix(e, "free") {
			frees++
		}
	}
	if allocs != 2 || frees != 2 {
		t.Errorf("allocs=%d frees=%d, want 2,2", allocs, frees)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	m := NewMachine(Config{})
	err := m.Run(func(th *Thread) {
		a := th.Alloc(4)
		th.Free(a)
		th.Free(a)
	})
	if err == nil || !strings.Contains(err.Error(), "Free") {
		t.Errorf("err = %v, want double-free error", err)
	}
}

func TestOpsMonotone(t *testing.T) {
	m := NewMachine(Config{})
	var mid uint64
	err := m.Run(func(th *Thread) {
		th.Store(1, 1)
		mid = m.Ops()
		th.Load(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mid == 0 || m.Ops() <= mid {
		t.Errorf("ops not monotone: mid=%d end=%d", mid, m.Ops())
	}
}

func TestRunTwiceFails(t *testing.T) {
	m := NewMachine(Config{})
	if err := m.Run(func(th *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(func(th *Thread) {}); err == nil {
		t.Error("second Run succeeded, want error")
	}
}

func TestManyThreadsStress(t *testing.T) {
	m := NewMachine(Config{Timeslice: 7})
	const workers = 32
	total := m.Static(workers)
	err := m.Run(func(th *Thread) {
		var kids []*Thread
		for w := 0; w < workers; w++ {
			slot := total + Addr(w)
			kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
				acc := uint64(0)
				for i := 0; i < 100; i++ {
					c.Exec(1)
					acc += uint64(i)
				}
				c.Store(slot, acc)
			}))
		}
		for _, k := range kids {
			th.Join(k)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if got := m.Peek(total + Addr(w)); got != 4950 {
			t.Errorf("worker %d sum = %d, want 4950", w, got)
		}
	}
}

// panickyTool panics inside a configurable hook after a countdown — the
// regression guard for the mid-handoff abort bug: a tool panic during the
// switchThread emission used to leave the handoff target parked forever.
type panickyTool struct {
	BaseTool
	onSwitch  bool
	countdown int
}

func (p *panickyTool) SwitchThread(from, to ThreadID) {
	if p.onSwitch {
		p.countdown--
		if p.countdown <= 0 {
			panic("tool exploded in SwitchThread")
		}
	}
}

func (p *panickyTool) Read(t ThreadID, a Addr) {
	if !p.onSwitch {
		p.countdown--
		if p.countdown <= 0 {
			panic("tool exploded in Read")
		}
	}
}

func TestToolPanicAbortsCleanly(t *testing.T) {
	for _, onSwitch := range []bool{true, false} {
		for _, countdown := range []int{1, 3, 7} {
			m := NewMachine(Config{Timeslice: 2, Tools: []Tool{&panickyTool{onSwitch: onSwitch, countdown: countdown}}})
			cells := m.Static(8)
			done := make(chan error, 1)
			go func() {
				done <- m.Run(func(th *Thread) {
					var kids []*Thread
					for w := 0; w < 3; w++ {
						base := cells + Addr(w)
						kids = append(kids, th.Spawn(fmt.Sprintf("w%d", w), func(c *Thread) {
							for i := 0; i < 30; i++ {
								c.Store(base, uint64(i))
								c.Load(base)
							}
						}))
					}
					for _, k := range kids {
						th.Join(k)
					}
				})
			}()
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), "exploded") {
					t.Errorf("onSwitch=%v countdown=%d: err = %v, want tool panic error", onSwitch, countdown, err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("onSwitch=%v countdown=%d: machine hung after tool panic", onSwitch, countdown)
			}
		}
	}
}
