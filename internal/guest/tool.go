package guest

// Env gives tools access to the interned names of the event stream they
// observe. A live Machine implements Env; a trace replayer provides one from
// the recorded name tables, so tools work identically online and offline.
type Env interface {
	// RoutineName resolves an interned routine id.
	RoutineName(RoutineID) string
	// SyncName resolves a synchronization-object id.
	SyncName(SyncID) string
	// NumRoutines and NumSyncs bound the id spaces seen so far.
	NumRoutines() int
	NumSyncs() int
	// Now returns the current event timestamp: a value that increases
	// monotonically across the event stream (the machine's operation
	// counter online, the recorded timestamp during replay).
	Now() uint64
}

// Tool is the analysis-tool callback interface, the analog of a Valgrind
// tool's instrumentation hooks. The machine invokes the hooks synchronously,
// in guest execution order; because guest threads are serialized, hooks never
// run concurrently.
//
// The bb arguments of Call and Return carry the calling thread's cumulative
// basic-block count at the instant of the event, so tools can compute
// per-activation cumulative costs without tracking every block.
type Tool interface {
	// Attach is invoked once before execution starts.
	Attach(env Env)

	// Call reports that thread t activated routine r.
	Call(t ThreadID, r RoutineID, bb uint64)
	// Return reports that thread t completed its topmost activation of r.
	Return(t ThreadID, r RoutineID, bb uint64)

	// Read and Write report ordinary memory accesses by thread t.
	Read(t ThreadID, a Addr)
	Write(t ThreadID, a Addr)

	// KernelRead reports that the kernel read memory cell a on behalf of
	// thread t (the thread sent the cell's data to an external device).
	// KernelWrite reports that the kernel wrote cell a on behalf of thread
	// t (the thread loaded external data into memory).
	KernelRead(t ThreadID, a Addr)
	KernelWrite(t ThreadID, a Addr)

	// SwitchThread reports a scheduler handoff between two guest threads.
	SwitchThread(from, to ThreadID)

	// ThreadStart and ThreadExit bracket a guest thread's lifetime.
	// ThreadStart(t, parent) happens after parent's spawning operation;
	// parent is 0 for the main thread.
	ThreadStart(t, parent ThreadID)
	ThreadExit(t ThreadID)

	// Sync reports a synchronization event on object s: release events
	// publish thread t's progress to s, acquire events import it.
	Sync(t ThreadID, kind SyncKind, s SyncID)

	// Alloc and Free report guest heap activity.
	Alloc(t ThreadID, base Addr, n int)
	Free(t ThreadID, base Addr, n int)

	// Finish is invoked once after the last guest thread exits.
	Finish()
}

// MemEvent is one packed memory-access event of a batch: the accessed
// address in the low bits and the access kind in the top two bits (store in
// bit 63, kernel-mediated in bit 62). Addresses are confined to the shadowed
// address space (well below bit 62), so the packing is lossless. The event's
// timestamp is implicit: the i-th event of a batch carries the batch's start
// timestamp plus i, because the machine bumps its operation counter once per
// event and flushes the batch before any non-memory event can intervene.
type MemEvent uint64

// memEventWrite marks a MemEvent as a store (a thread write, or the kernel
// filling a cell); loads leave the bit clear. memEventKernel marks the
// access as kernel-mediated I/O (KernelRead/KernelWrite hooks).
const (
	memEventWrite  MemEvent = 1 << 63
	memEventKernel MemEvent = 1 << 62
)

// ReadEvent packs a load of address a.
func ReadEvent(a Addr) MemEvent { return MemEvent(a) }

// WriteEvent packs a store to address a.
func WriteEvent(a Addr) MemEvent { return MemEvent(a) | memEventWrite }

// KernelReadEvent packs a kernel read of cell a on a thread's behalf.
func KernelReadEvent(a Addr) MemEvent { return MemEvent(a) | memEventKernel }

// KernelWriteEvent packs a kernel write of cell a on a thread's behalf.
func KernelWriteEvent(a Addr) MemEvent { return MemEvent(a) | memEventWrite | memEventKernel }

// Addr returns the accessed address.
func (e MemEvent) Addr() Addr { return Addr(e &^ (memEventWrite | memEventKernel)) }

// IsWrite reports whether the event stores to the cell (a thread write or a
// kernel write; false: a load by the thread or the kernel).
func (e MemEvent) IsWrite() bool { return e&memEventWrite != 0 }

// IsKernel reports whether the access is kernel-mediated I/O.
func (e MemEvent) IsKernel() bool { return e&memEventKernel != 0 }

// MemEventSink is the optional batched fast path of the guest→tool boundary.
// A Tool that also implements MemEventSink receives runs of plain Read/Write
// events as whole batches through MemBatch instead of one interface call per
// event. Batches preserve the event stream exactly: all events belong to
// thread t, appear in execution order, and the i-th event happened at
// timestamp startTS+i; the machine flushes the pending batch before every
// non-memory event (call/return, thread switch, sync, alloc, thread
// lifecycle), so a sink interleaving MemBatch with the ordinary Tool hooks
// observes exactly the sequential event order. Kernel-mediated accesses are
// memory events too — they ride in batches, tagged with IsKernel, instead of
// forcing a flush. Tools without the
// interface are fed through a replay shim that unrolls each batch into
// ordinary Read/Write calls (with Env.Now reporting each event's own
// timestamp), so legacy tools observe an identical stream.
type MemEventSink interface {
	MemBatch(t ThreadID, startTS uint64, events []MemEvent)
}

// BaseTool is a Tool with no-op hooks, intended for embedding so tools only
// implement the events they care about.
type BaseTool struct{}

// Attach implements Tool.
func (BaseTool) Attach(Env) {}

// Call implements Tool.
func (BaseTool) Call(ThreadID, RoutineID, uint64) {}

// Return implements Tool.
func (BaseTool) Return(ThreadID, RoutineID, uint64) {}

// Read implements Tool.
func (BaseTool) Read(ThreadID, Addr) {}

// Write implements Tool.
func (BaseTool) Write(ThreadID, Addr) {}

// KernelRead implements Tool.
func (BaseTool) KernelRead(ThreadID, Addr) {}

// KernelWrite implements Tool.
func (BaseTool) KernelWrite(ThreadID, Addr) {}

// SwitchThread implements Tool.
func (BaseTool) SwitchThread(ThreadID, ThreadID) {}

// ThreadStart implements Tool.
func (BaseTool) ThreadStart(ThreadID, ThreadID) {}

// ThreadExit implements Tool.
func (BaseTool) ThreadExit(ThreadID) {}

// Sync implements Tool.
func (BaseTool) Sync(ThreadID, SyncKind, SyncID) {}

// Alloc implements Tool.
func (BaseTool) Alloc(ThreadID, Addr, int) {}

// Free implements Tool.
func (BaseTool) Free(ThreadID, Addr, int) {}

// Finish implements Tool.
func (BaseTool) Finish() {}

// Event dispatch helpers. Each guest operation funnels through exactly one of
// these, which also advance the machine's operation counter.
//
// Memory accesses — the bulk of any event stream, including kernel-mediated
// I/O — do not fan out to the tools one dynamic-interface call at a time.
// They accumulate into the machine's fixed-size event ring (kind and address
// packed into one word, thread and start timestamp held once per batch) and
// flush to the tools at the first non-memory event, when the ring fills, or
// at the end of the run. All flush points are scheduling boundaries where
// the profiler's shadow stacks change anyway (call/return, thread switch) or
// events that carry their own tool state (sync, alloc/free, thread
// lifecycle), so batching never reorders events and tools observe identical
// streams.

// memBatchCap is the event ring's capacity. The fair scheduler rotates
// threads every Config.Timeslice operations (default 100), so a larger ring
// only matters for long single-threaded stretches of loads and stores.
const memBatchCap = 256

// The emit helpers append memory events to the pending batch directly (the
// append is open-coded in each helper so the hot path costs no extra call):
// the event is stored at the ring's write index — masked, which also proves
// the store in bounds — and one unsigned compare against m.batchEdge
// (Config.BatchMax - 2, so the flush fires once BatchMax events are
// pending; memBatchCap-2 by default) routes both rare cases (first event
// of a batch, batch full) to bufferMemEdge. The caller has already
// advanced m.ops, so a batch's events have consecutive timestamps starting
// at batchStart.
// bufferMemEdge handles the ring's boundary cases out of line. Memory events
// are only emitted by the executing thread, so the batch's issuing thread is
// always m.running.
//
//go:noinline
func (m *Machine) bufferMemEdge() {
	if m.batchLen == 1 {
		m.batchThread = m.running
		m.batchStart = m.ops
		return
	}
	m.flushMem()
}

// flushMem dispatches the pending memory-event batch: batch-capable tools
// consume it whole, legacy tools get it replayed event by event.
func (m *Machine) flushMem() {
	if m.batchLen == 0 {
		return
	}
	evs := m.batch[:m.batchLen]
	m.batchLen = 0
	m.stats.memEvents += uint64(len(evs)) // hoisted per-event tally: one add per flush
	m.stats.flushes++
	for i, tl := range m.tools {
		if s := m.sinks[i]; s != nil {
			s.MemBatch(m.batchThread, m.batchStart, evs)
		} else {
			m.replayBatch(tl, evs)
		}
	}
}

// replayBatch is the legacy-tool shim: it unrolls a batch into ordinary
// Read/Write/KernelRead/KernelWrite hook calls. While it runs, Env.Now
// reports each event's own timestamp, so timestamp-recording tools (the
// trace recorder) produce streams identical to unbatched dispatch.
func (m *Machine) replayBatch(tl Tool, evs []MemEvent) {
	t := m.batchThread
	m.replaying = true
	for i, e := range evs {
		m.replayTS = m.batchStart + uint64(i)
		switch {
		case e.IsKernel():
			if e.IsWrite() {
				tl.KernelWrite(t, e.Addr())
			} else {
				tl.KernelRead(t, e.Addr())
			}
		case e.IsWrite():
			tl.Write(t, e.Addr())
		default:
			tl.Read(t, e.Addr())
		}
	}
	m.replaying = false
}

func (m *Machine) emitCall(t ThreadID, r RoutineID, bb uint64) {
	m.ops++
	m.stats.calls++
	m.flushMem()
	for _, tl := range m.tools {
		tl.Call(t, r, bb)
	}
}

func (m *Machine) emitReturn(t ThreadID, r RoutineID, bb uint64) {
	m.ops++
	m.stats.returns++
	m.flushMem()
	for _, tl := range m.tools {
		tl.Return(t, r, bb)
	}
}

func (m *Machine) emitRead(t ThreadID, a Addr) {
	m.ops++
	if m.direct {
		m.stats.memEvents++
		for _, tl := range m.tools {
			tl.Read(t, a)
		}
		return
	}
	n := m.batchLen
	m.batch[n&(memBatchCap-1)] = ReadEvent(a)
	m.batchLen = n + 1
	if n-1 >= m.batchEdge {
		m.bufferMemEdge()
	}
}

func (m *Machine) emitWrite(t ThreadID, a Addr) {
	m.ops++
	if m.direct {
		m.stats.memEvents++
		for _, tl := range m.tools {
			tl.Write(t, a)
		}
		return
	}
	n := m.batchLen
	m.batch[n&(memBatchCap-1)] = WriteEvent(a)
	m.batchLen = n + 1
	if n-1 >= m.batchEdge {
		m.bufferMemEdge()
	}
}

func (m *Machine) emitKernelRead(t ThreadID, a Addr) {
	m.ops++
	m.stats.kernelEvents++
	if m.direct {
		m.stats.memEvents++
		for _, tl := range m.tools {
			tl.KernelRead(t, a)
		}
		return
	}
	n := m.batchLen
	m.batch[n&(memBatchCap-1)] = KernelReadEvent(a)
	m.batchLen = n + 1
	if n-1 >= m.batchEdge {
		m.bufferMemEdge()
	}
}

func (m *Machine) emitKernelWrite(t ThreadID, a Addr) {
	m.ops++
	m.stats.kernelEvents++
	if m.direct {
		m.stats.memEvents++
		for _, tl := range m.tools {
			tl.KernelWrite(t, a)
		}
		return
	}
	n := m.batchLen
	m.batch[n&(memBatchCap-1)] = KernelWriteEvent(a)
	m.batchLen = n + 1
	if n-1 >= m.batchEdge {
		m.bufferMemEdge()
	}
}

func (m *Machine) emitSwitch(from, to ThreadID) {
	m.ops++
	m.stats.switches++
	m.flushMem()
	for _, tl := range m.tools {
		tl.SwitchThread(from, to)
	}
}

func (m *Machine) emitThreadStart(t, parent ThreadID) {
	m.ops++
	m.flushMem()
	for _, tl := range m.tools {
		tl.ThreadStart(t, parent)
	}
}

func (m *Machine) emitThreadExit(t ThreadID) {
	m.ops++
	m.flushMem()
	for _, tl := range m.tools {
		tl.ThreadExit(t)
	}
}

func (m *Machine) emitSync(t ThreadID, kind SyncKind, s SyncID) {
	m.ops++
	m.flushMem()
	for _, tl := range m.tools {
		tl.Sync(t, kind, s)
	}
}

func (m *Machine) emitAlloc(t ThreadID, base Addr, n int) {
	m.ops++
	m.flushMem()
	for _, tl := range m.tools {
		tl.Alloc(t, base, n)
	}
}

func (m *Machine) emitFree(t ThreadID, base Addr, n int) {
	m.ops++
	m.flushMem()
	for _, tl := range m.tools {
		tl.Free(t, base, n)
	}
}
