package guest

// Env gives tools access to the interned names of the event stream they
// observe. A live Machine implements Env; a trace replayer provides one from
// the recorded name tables, so tools work identically online and offline.
type Env interface {
	// RoutineName resolves an interned routine id.
	RoutineName(RoutineID) string
	// SyncName resolves a synchronization-object id.
	SyncName(SyncID) string
	// NumRoutines and NumSyncs bound the id spaces seen so far.
	NumRoutines() int
	NumSyncs() int
	// Now returns the current event timestamp: a value that increases
	// monotonically across the event stream (the machine's operation
	// counter online, the recorded timestamp during replay).
	Now() uint64
}

// Tool is the analysis-tool callback interface, the analog of a Valgrind
// tool's instrumentation hooks. The machine invokes the hooks synchronously,
// in guest execution order; because guest threads are serialized, hooks never
// run concurrently.
//
// The bb arguments of Call and Return carry the calling thread's cumulative
// basic-block count at the instant of the event, so tools can compute
// per-activation cumulative costs without tracking every block.
type Tool interface {
	// Attach is invoked once before execution starts.
	Attach(env Env)

	// Call reports that thread t activated routine r.
	Call(t ThreadID, r RoutineID, bb uint64)
	// Return reports that thread t completed its topmost activation of r.
	Return(t ThreadID, r RoutineID, bb uint64)

	// Read and Write report ordinary memory accesses by thread t.
	Read(t ThreadID, a Addr)
	Write(t ThreadID, a Addr)

	// KernelRead reports that the kernel read memory cell a on behalf of
	// thread t (the thread sent the cell's data to an external device).
	// KernelWrite reports that the kernel wrote cell a on behalf of thread
	// t (the thread loaded external data into memory).
	KernelRead(t ThreadID, a Addr)
	KernelWrite(t ThreadID, a Addr)

	// SwitchThread reports a scheduler handoff between two guest threads.
	SwitchThread(from, to ThreadID)

	// ThreadStart and ThreadExit bracket a guest thread's lifetime.
	// ThreadStart(t, parent) happens after parent's spawning operation;
	// parent is 0 for the main thread.
	ThreadStart(t, parent ThreadID)
	ThreadExit(t ThreadID)

	// Sync reports a synchronization event on object s: release events
	// publish thread t's progress to s, acquire events import it.
	Sync(t ThreadID, kind SyncKind, s SyncID)

	// Alloc and Free report guest heap activity.
	Alloc(t ThreadID, base Addr, n int)
	Free(t ThreadID, base Addr, n int)

	// Finish is invoked once after the last guest thread exits.
	Finish()
}

// BaseTool is a Tool with no-op hooks, intended for embedding so tools only
// implement the events they care about.
type BaseTool struct{}

// Attach implements Tool.
func (BaseTool) Attach(Env) {}

// Call implements Tool.
func (BaseTool) Call(ThreadID, RoutineID, uint64) {}

// Return implements Tool.
func (BaseTool) Return(ThreadID, RoutineID, uint64) {}

// Read implements Tool.
func (BaseTool) Read(ThreadID, Addr) {}

// Write implements Tool.
func (BaseTool) Write(ThreadID, Addr) {}

// KernelRead implements Tool.
func (BaseTool) KernelRead(ThreadID, Addr) {}

// KernelWrite implements Tool.
func (BaseTool) KernelWrite(ThreadID, Addr) {}

// SwitchThread implements Tool.
func (BaseTool) SwitchThread(ThreadID, ThreadID) {}

// ThreadStart implements Tool.
func (BaseTool) ThreadStart(ThreadID, ThreadID) {}

// ThreadExit implements Tool.
func (BaseTool) ThreadExit(ThreadID) {}

// Sync implements Tool.
func (BaseTool) Sync(ThreadID, SyncKind, SyncID) {}

// Alloc implements Tool.
func (BaseTool) Alloc(ThreadID, Addr, int) {}

// Free implements Tool.
func (BaseTool) Free(ThreadID, Addr, int) {}

// Finish implements Tool.
func (BaseTool) Finish() {}

// Event dispatch helpers. Each guest operation funnels through exactly one of
// these, which also advance the machine's operation counter.

func (m *Machine) emitCall(t ThreadID, r RoutineID, bb uint64) {
	m.ops++
	for _, tl := range m.tools {
		tl.Call(t, r, bb)
	}
}

func (m *Machine) emitReturn(t ThreadID, r RoutineID, bb uint64) {
	m.ops++
	for _, tl := range m.tools {
		tl.Return(t, r, bb)
	}
}

func (m *Machine) emitRead(t ThreadID, a Addr) {
	m.ops++
	for _, tl := range m.tools {
		tl.Read(t, a)
	}
}

func (m *Machine) emitWrite(t ThreadID, a Addr) {
	m.ops++
	for _, tl := range m.tools {
		tl.Write(t, a)
	}
}

func (m *Machine) emitKernelRead(t ThreadID, a Addr) {
	m.ops++
	for _, tl := range m.tools {
		tl.KernelRead(t, a)
	}
}

func (m *Machine) emitKernelWrite(t ThreadID, a Addr) {
	m.ops++
	for _, tl := range m.tools {
		tl.KernelWrite(t, a)
	}
}

func (m *Machine) emitSwitch(from, to ThreadID) {
	m.ops++
	for _, tl := range m.tools {
		tl.SwitchThread(from, to)
	}
}

func (m *Machine) emitThreadStart(t, parent ThreadID) {
	m.ops++
	for _, tl := range m.tools {
		tl.ThreadStart(t, parent)
	}
}

func (m *Machine) emitThreadExit(t ThreadID) {
	m.ops++
	for _, tl := range m.tools {
		tl.ThreadExit(t)
	}
}

func (m *Machine) emitSync(t ThreadID, kind SyncKind, s SyncID) {
	m.ops++
	for _, tl := range m.tools {
		tl.Sync(t, kind, s)
	}
}

func (m *Machine) emitAlloc(t ThreadID, base Addr, n int) {
	m.ops++
	for _, tl := range m.tools {
		tl.Alloc(t, base, n)
	}
}

func (m *Machine) emitFree(t ThreadID, base Addr, n int) {
	m.ops++
	for _, tl := range m.tools {
		tl.Free(t, base, n)
	}
}
