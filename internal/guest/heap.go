package guest

// heap is a simple bump allocator over the guest address space. Addresses
// are never reused, which keeps every allocation's identity stable for
// shadow-memory analyses (freed regions stay poisoned for memcheck).
type heap struct {
	m    *Machine
	next Addr
	size map[Addr]int
}

// staticBase reserves the low part of the address space for machine-level
// static allocations (program data); heap blocks start above it.
const (
	staticBase Addr = 1 << 10
	heapBase   Addr = 1 << 32
)

func newHeap(m *Machine) *heap {
	return &heap{m: m, next: heapBase, size: make(map[Addr]int)}
}

func (h *heap) alloc(n int) Addr {
	if n <= 0 {
		panic("guest: Alloc of non-positive size")
	}
	base := h.next
	h.next += Addr(n)
	h.size[base] = n
	return base
}

func (h *heap) free(base Addr) int {
	n, ok := h.size[base]
	if !ok {
		panic("guest: Free of unallocated or already-freed address")
	}
	delete(h.size, base)
	return n
}

// Alloc allocates n fresh memory cells from the guest heap and reports the
// allocation to tools.
func (th *Thread) Alloc(n int) Addr {
	th.step()
	base := th.m.heap.alloc(n)
	th.m.emitAlloc(th.id, base, n)
	return base
}

// Free releases a heap block previously returned by Alloc.
func (th *Thread) Free(base Addr) {
	th.step()
	n := th.m.heap.free(base)
	th.m.emitFree(th.id, base, n)
}

// Static allocates n memory cells outside the guest heap, with no events
// emitted: the analog of a program's static data segment. It may be called
// before Run to set up workload inputs.
func (m *Machine) Static(n int) Addr {
	if n <= 0 {
		panic("guest: Static of non-positive size")
	}
	if m.staticNext == 0 {
		m.staticNext = staticBase
	}
	base := m.staticNext
	m.staticNext += Addr(n)
	if m.staticNext > heapBase {
		panic("guest: static segment exhausted")
	}
	return base
}

// Preload initializes memory cells without generating events, the analog of
// a program's initialized data segment. It is intended for pre-run workload
// setup; reading preloaded cells counts as program input, as it should.
func (m *Machine) Preload(base Addr, values []uint64) {
	for i, v := range values {
		m.mem.store(base+Addr(i), v)
	}
}

// Peek reads a memory cell without generating events. It is intended for
// host-side result verification after a run.
func (m *Machine) Peek(a Addr) uint64 { return m.mem.load(a) }

// Poke writes a memory cell without generating events (host-side test setup).
func (m *Machine) Poke(a Addr, v uint64) { m.mem.store(a, v) }
