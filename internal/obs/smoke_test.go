package obs_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestObsSmoke is the end-to-end smoke for the -http plane: it builds
// cmd/aprof-trace, runs `analyze -workload mysqld -http 127.0.0.1:0`, and
// scrapes /metrics, /progress, /profile and /spans.json from the live
// process — /profile and /spans.json timed into the analysis phase via the
// SSE phase field — then asserts the run's stdout is byte-identical to a
// run without -http. Gated behind APROF_OBS_SMOKE=1 because it builds and
// runs a real workload twice (several seconds each); verify.sh runs it.
func TestObsSmoke(t *testing.T) {
	if os.Getenv("APROF_OBS_SMOKE") == "" {
		t.Skip("set APROF_OBS_SMOKE=1 to run the subprocess smoke test")
	}
	size := 256
	if s := os.Getenv("APROF_OBS_SMOKE_SIZE"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad APROF_OBS_SMOKE_SIZE %q: %v", s, err)
		}
		size = n
	}

	bin := filepath.Join(t.TempDir(), "aprof-trace")
	build := exec.Command("go", "build", "-o", bin, "./cmd/aprof-trace")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building aprof-trace: %v\n%s", err, out)
	}
	args := []string{
		"analyze", "-workload", "mysqld",
		"-size", strconv.Itoa(size), "-threads", "8", "-progress=false",
	}

	// Reference run: no HTTP server attached.
	ref := exec.Command(bin, args...)
	var refOut bytes.Buffer
	ref.Stdout = &refOut
	ref.Stderr = io.Discard
	if err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Observed run: -http 127.0.0.1:0, scraped while in flight.
	cmd := exec.Command(bin, append(args, "-http", "127.0.0.1:0")...)
	var obsOut bytes.Buffer
	cmd.Stdout = &obsOut
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base, err := listeningAddr(stderr)
	if err != nil {
		t.Fatalf("parsing listen address: %v", err)
	}
	t.Logf("scraping %s", base)
	client := &http.Client{Timeout: 15 * time.Second}

	// Early-phase scrapes: must be live before the analysis even starts.
	// (No content assertions yet — metrics register lazily, so the scrape
	// can land before the workload has emitted anything.)
	for _, path := range []string{"/healthz", "/metrics", "/buildinfo", "/telemetry.json"} {
		mustGet(t, client, base+path)
	}

	// Wait for the analysis phase (the run records the workload in-process
	// first), then pull a live profile and the span timeline mid-run.
	if err := waitForPhase(client, base, "analyze", cmd); err != nil {
		t.Fatalf("waiting for analyze phase: %v", err)
	}
	if body := mustGet(t, client, base+"/metrics"); !bytes.Contains(body, []byte("# TYPE aprof_")) {
		t.Errorf("/metrics has no aprof_ family during analysis:\n%s", body)
	}
	var snap struct {
		Partial bool            `json:"partial"`
		Profile json.RawMessage `json:"profile"`
	}
	if err := json.Unmarshal(mustGet(t, client, base+"/profile"), &snap); err != nil {
		t.Fatalf("/profile is not a snapshot document: %v", err)
	}
	if len(snap.Profile) == 0 {
		t.Error("/profile document has no profile payload")
	}
	var spans struct {
		Spans []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(mustGet(t, client, base+"/spans.json"), &spans); err != nil {
		t.Fatalf("/spans.json undecodable: %v", err)
	}
	if len(spans.Spans) == 0 {
		t.Error("/spans.json empty during analysis")
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("observed run: %v", err)
	}
	if !bytes.Equal(obsOut.Bytes(), refOut.Bytes()) {
		t.Errorf("scraped run's stdout differs from unobserved run:\n--- unobserved ---\n%s\n--- scraped ---\n%s",
			refOut.Bytes(), obsOut.Bytes())
	}
}

// listeningAddr scans the subprocess's stderr for the obs listen line and
// returns the http://host:port base; remaining stderr is drained in the
// background so the child never blocks on a full pipe.
func listeningAddr(stderr io.Reader) (string, error) {
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "obs: listening on "); ok {
			go io.Copy(io.Discard, stderr)
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("stderr closed without an 'obs: listening on' line")
}

// waitForPhase polls /progress?once=1 until the SSE payload reports the
// wanted phase, failing if the subprocess exits first.
func waitForPhase(client *http.Client, base, phase string, cmd *exec.Cmd) error {
	needle := []byte(`"phase":"` + phase + `"`)
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		if cmd.ProcessState != nil {
			break
		}
		resp, err := client.Get(base + "/progress?once=1")
		if err != nil {
			return fmt.Errorf("process gone before %s phase was observed (raise -size via APROF_OBS_SMOKE_SIZE): %w", phase, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if bytes.Contains(body, needle) {
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("%s phase not observed within the deadline", phase)
}

func mustGet(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return body
}
