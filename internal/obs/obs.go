// Package obs is the profiler's HTTP observability plane: a
// dependency-free server any long-running command embeds via the shared
// -http flag to expose, while a run is in flight,
//
//   - /metrics          Prometheus text exposition of the telemetry registry
//   - /telemetry.json   the registry's JSON snapshot
//   - /spans.json       the registry's completed-span ring (timeline data)
//   - /profile          an on-demand consistent live profile (JSON document
//     embedding the canonical dump codec), served through a ProfileFeed
//     wired to the run's snapshot machinery
//   - /progress         a server-sent-events stream of done/total/rate/ETA
//     readings plus phase-change events, driven by the same RateEstimator
//     the stderr progress line renders from (?once=1 emits one event and
//     closes, for scrapers)
//
// Multi-tenant embedders (aprofd) install per-request resolvers
// (SetProfileResolver, SetEstimatorResolver) so /profile and /progress
// answer per ?tenant= query, and register extra endpoints via Handle.
//   - /debug/pprof/*    the process's own pprof endpoints
//   - /healthz          liveness ("ok")
//   - /buildinfo        module path, version and Go toolchain as JSON
//
// The server is strictly read-only and provably inert: every endpoint
// observes state the run already maintains (registry snapshots, the
// snapshot machinery's published documents), so hammering all of them
// mid-run cannot change the exported profile by a byte — the http-scrape
// metamorphic axis in internal/invariant enforces exactly that. Idle cost
// is one parked accept goroutine; BenchmarkObsOverhead gates it below 1%.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Options configures Start.
type Options struct {
	// Addr is the listen address. An explicit port (e.g. "127.0.0.1:9120")
	// binds it; ":0" or "127.0.0.1:0" picks a free port (the chosen address
	// is logged and available via Server.Addr). An empty Addr defaults to
	// "127.0.0.1:0".
	Addr string

	// Registry backs /metrics, /telemetry.json and /spans.json. May be nil
	// (the endpoints then serve empty expositions).
	Registry *telemetry.Registry

	// Component names the embedding command ("aprof-trace", ...); reported
	// by /buildinfo.
	Component string

	// Log, when non-nil, receives the single "obs: listening on ..." line.
	Log io.Writer
}

// Server is a running observability server. Create with Start; stop with
// Close. All setters are safe to call while the server is serving.
type Server struct {
	opts    Options
	ln      net.Listener
	srv     *http.Server
	closing chan struct{} // closed before Shutdown so SSE streams terminate
	done    chan struct{} // Serve returned

	mux *http.ServeMux

	mu          sync.Mutex
	est         *telemetry.RateEstimator
	feed        *ProfileFeed
	estResolver func(*http.Request) *telemetry.RateEstimator
	feedResolve func(*http.Request) *ProfileFeed
}

// Start binds the listen address and begins serving in a background
// goroutine. It returns once the listener is bound, so the endpoints are
// reachable before the embedding command starts its run.
func Start(opts Options) (*Server, error) {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		opts:    opts,
		ln:      ln,
		closing: make(chan struct{}),
		done:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/telemetry.json", s.handleTelemetryJSON)
	mux.HandleFunc("/spans.json", s.handleSpans)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/buildinfo", s.handleBuildinfo)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux = mux
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		_ = s.srv.Serve(ln) // always ErrServerClosed after Close
	}()
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "obs: listening on http://%s\n", s.Addr())
	}
	return s, nil
}

// Addr returns the bound listen address (resolving ":0" to the chosen
// port).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// SetEstimator wires the run's progress estimator into /progress. Safe to
// call (or re-call, on a phase change to a new run) at any time; no-op on
// a nil server.
func (s *Server) SetEstimator(est *telemetry.RateEstimator) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.est = est
	s.mu.Unlock()
}

// SetProfileFeed wires the run's live profile source into /profile. No-op
// on a nil server.
func (s *Server) SetProfileFeed(f *ProfileFeed) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.feed = f
	s.mu.Unlock()
}

// SetEstimatorResolver installs a per-request estimator source for
// /progress, overriding SetEstimator: multi-tenant embedders (aprofd)
// resolve the estimator from the request (its ?tenant= parameter). A nil
// result from the resolver 404s the request. No-op on a nil server.
func (s *Server) SetEstimatorResolver(fn func(*http.Request) *telemetry.RateEstimator) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.estResolver = fn
	s.mu.Unlock()
}

// SetProfileResolver installs a per-request profile-feed source for
// /profile, overriding SetProfileFeed, symmetrically to
// SetEstimatorResolver. No-op on a nil server.
func (s *Server) SetProfileResolver(fn func(*http.Request) *ProfileFeed) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.feedResolve = fn
	s.mu.Unlock()
}

// Handle registers an additional endpoint on the server's mux — the hook
// multi-tenant embedders use for surfaces the fixed endpoint set does not
// cover (aprofd's /tenants.json). Panics (like http.ServeMux) on a pattern
// already registered; safe to call while serving, but endpoints should be
// registered before traffic is expected on them. No-op on a nil server.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil {
		return
	}
	s.mux.Handle(pattern, h)
}

func (s *Server) estimator(r *http.Request) (*telemetry.RateEstimator, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.estResolver != nil {
		est := s.estResolver(r)
		return est, est != nil
	}
	return s.est, true
}

func (s *Server) profileFeed(r *http.Request) (*ProfileFeed, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.feedResolve != nil {
		f := s.feedResolve(r)
		return f, f != nil
	}
	return s.feed, true
}

// Close shuts the server down gracefully: in-flight scrapes finish, SSE
// streams are told to terminate, then the listener closes. Safe on a nil
// server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	close(s.closing)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s observability plane\n\n", s.opts.Component)
	for _, ep := range []string{
		"/metrics", "/telemetry.json", "/spans.json", "/profile",
		"/progress", "/healthz", "/buildinfo", "/debug/pprof/",
	} {
		fmt.Fprintln(w, ep)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.opts.Registry.WritePrometheus(w)
}

func (s *Server) handleTelemetryJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.opts.Registry.WriteJSON(w)
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	spans := s.opts.Registry.Spans()
	if spans == nil {
		spans = []telemetry.SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Spans []telemetry.SpanRecord `json:"spans"`
	}{spans})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	f, ok := s.profileFeed(r)
	if !ok {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	if f == nil {
		http.Error(w, "no live profile source wired (is a run in flight?)", http.StatusServiceUnavailable)
		return
	}
	doc, err := f.Get(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(doc)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleBuildinfo(w http.ResponseWriter, _ *http.Request) {
	info := struct {
		Component string `json:"component"`
		Path      string `json:"path,omitempty"`
		Version   string `json:"version,omitempty"`
		Go        string `json:"go"`
	}{Component: s.opts.Component, Go: runtime.Version()}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Path = bi.Main.Path
		info.Version = bi.Main.Version
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(info)
}

// progressEvent is the JSON payload of one SSE "progress" (or "phase")
// event; see docs/OBSERVABILITY.md for the schema.
type progressEvent struct {
	Done      uint64  `json:"done"`
	Total     uint64  `json:"total,omitempty"`
	Pct       int     `json:"pct,omitempty"`
	Rate      float64 `json:"rate,omitempty"`
	ETAMillis int64   `json:"eta_ms,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms"`
	Phase     string  `json:"phase,omitempty"`
	Finished  bool    `json:"finished,omitempty"`
}

func makeProgressEvent(e telemetry.RateEstimate) progressEvent {
	ev := progressEvent{
		Done:      e.Done,
		Total:     e.Total,
		Pct:       e.Pct,
		ElapsedMS: e.Elapsed.Milliseconds(),
		Phase:     e.Phase,
		Finished:  e.Finished,
	}
	if e.HasRate {
		ev.Rate = e.Rate
	}
	if e.HasETA {
		ev.ETAMillis = e.ETA.Milliseconds()
	}
	return ev
}

// progressTick is the SSE emit cadence.
const progressTick = 500 * time.Millisecond

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	est, ok := s.estimator(r)
	if !ok {
		http.Error(w, "unknown tenant", http.StatusNotFound)
		return
	}
	if est == nil {
		http.Error(w, "no progress estimator wired (is a run in flight?)", http.StatusServiceUnavailable)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	emit := func(event string, e telemetry.RateEstimate) bool {
		data, err := json.Marshal(makeProgressEvent(e))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	e := est.Estimate()
	emit("progress", e)
	if r.URL.Query().Get("once") != "" || e.Finished {
		return
	}
	lastPhase := e.Phase
	t := time.NewTicker(progressTick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-s.closing:
			return
		}
		// Re-resolve the estimator: a multi-phase command swaps in a fresh
		// one per run (record, then analyze), and a multi-tenant embedder
		// may rebind the tenant's estimator between windows.
		if cur, ok := s.estimator(r); ok && cur != nil {
			est = cur
		}
		e = est.Estimate()
		if e.Phase != lastPhase {
			lastPhase = e.Phase
			if !emit("phase", e) {
				return
			}
			continue
		}
		if !emit("progress", e) {
			return
		}
		if e.Finished {
			return
		}
	}
}
