// ProfileFeed bridges the run's snapshot machinery to /profile: the run
// publishes each live snapshot document into the feed, and a GET asks the
// run for a fresh capture, waits for it, and returns the JSON bytes.
package obs

import (
	"context"
	"errors"
	"sync"
	"time"
)

// feedTimeout bounds how long a /profile request waits for a fresh
// snapshot before falling back to the latest published one. A stalled run
// (workers blocked, nothing reaching a safepoint) must not hang scrapers.
const feedTimeout = 10 * time.Second

// errNoProfile is returned when no snapshot has ever been published and
// none arrives within the timeout.
var errNoProfile = errors.New("obs: no live profile published yet")

// ProfileFeed carries live profile documents from the run to /profile.
// The run side calls Deliver for every published snapshot and Final once
// the run completes; the serving side calls Get per request. All methods
// are safe for concurrent use and on a nil receiver.
type ProfileFeed struct {
	mu      sync.Mutex
	request func() // asks the run for a fresh capture; nil when pull-only
	// waitFor is how many Deliver calls one request produces up to and
	// including the fresh post-capture document. The pipeline trigger
	// publishes twice (an immediate document from the latest known states,
	// then the post-capture one); the inline profiler publishes once.
	waitFor int
	latest  []byte
	seq     uint64
	final   bool
	wake    chan struct{} // closed and replaced on every Deliver
}

// NewProfileFeed returns an empty feed.
func NewProfileFeed() *ProfileFeed {
	return &ProfileFeed{wake: make(chan struct{}), waitFor: 1}
}

// SetRequester wires the run's on-demand capture hook. publishes is the
// number of Deliver calls one request triggers, the last of which is the
// fresh capture (pipeline trigger: 2; inline profiler: 1).
func (f *ProfileFeed) SetRequester(fn func(), publishes int) {
	if f == nil {
		return
	}
	if publishes < 1 {
		publishes = 1
	}
	f.mu.Lock()
	f.request = fn
	f.waitFor = publishes
	f.mu.Unlock()
}

// Deliver publishes one snapshot document. The feed keeps its own copy,
// so the caller may reuse the buffer.
func (f *ProfileFeed) Deliver(doc []byte) {
	if f == nil {
		return
	}
	cp := make([]byte, len(doc))
	copy(cp, doc)
	f.mu.Lock()
	f.latest = cp
	f.seq++
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// Final publishes the run's final document and marks the feed finished:
// subsequent Gets return it immediately without asking for captures.
func (f *ProfileFeed) Final(doc []byte) {
	if f == nil {
		return
	}
	f.Deliver(doc)
	f.Finish()
}

// Finish marks the feed finished without publishing: Gets return the
// latest already-published document immediately. Used when the run's
// snapshot machinery publishes its own final document on close.
func (f *ProfileFeed) Finish() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.final = true
	close(f.wake)
	f.wake = make(chan struct{})
	f.mu.Unlock()
}

// Get returns a live profile document. While the run is in flight it asks
// for a fresh capture and waits (bounded by feedTimeout and ctx) for the
// post-capture publish; after Final, or on timeout, it returns the latest
// published document.
func (f *ProfileFeed) Get(ctx context.Context) ([]byte, error) {
	if f == nil {
		return nil, errNoProfile
	}
	f.mu.Lock()
	req := f.request
	target := f.seq + uint64(f.waitFor)
	if f.final || req == nil {
		doc := f.latest
		f.mu.Unlock()
		if doc == nil {
			return nil, errNoProfile
		}
		return doc, nil
	}
	f.mu.Unlock()

	req()
	deadline := time.NewTimer(feedTimeout)
	defer deadline.Stop()
	for {
		f.mu.Lock()
		doc, seq, final, wake := f.latest, f.seq, f.final, f.wake
		f.mu.Unlock()
		if seq >= target || final {
			return doc, nil
		}
		select {
		case <-wake:
		case <-deadline.C:
			if doc == nil {
				return nil, errNoProfile
			}
			return doc, nil
		case <-ctx.Done():
			if doc == nil {
				return nil, ctx.Err()
			}
			return doc, nil
		}
	}
}
