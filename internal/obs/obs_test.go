package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// startTestServer starts a server on a free port with a populated registry
// and tears it down with the test.
func startTestServer(t *testing.T) (*Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("guest/mem_events").Add(42)
	reg.Histogram("pipeline/segment_ns").Observe(1000)
	reg.StartSpan(context.Background(), "test_phase").End()
	s, err := Start(Options{Addr: "127.0.0.1:0", Registry: reg, Component: "obs-test"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, reg
}

func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	s, _ := startTestServer(t)

	code, body := get(t, s, "/metrics")
	if code != 200 || !strings.Contains(body, "aprof_guest_mem_events 42") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	if !strings.Contains(body, "aprof_pipeline_segment_ns_count 1") {
		t.Fatalf("/metrics missing histogram series: %q", body)
	}

	code, body = get(t, s, "/telemetry.json")
	var snap telemetry.Snapshot
	if code != 200 || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/telemetry.json = %d %q", code, body)
	}
	if snap.Counters["guest/mem_events"] != 42 {
		t.Fatalf("/telemetry.json counter = %d, want 42", snap.Counters["guest/mem_events"])
	}

	code, body = get(t, s, "/spans.json")
	var spans struct {
		Spans []telemetry.SpanRecord `json:"spans"`
	}
	if code != 200 || json.Unmarshal([]byte(body), &spans) != nil {
		t.Fatalf("/spans.json = %d %q", code, body)
	}
	if len(spans.Spans) != 1 || spans.Spans[0].Name != "test_phase" {
		t.Fatalf("/spans.json spans = %+v, want one test_phase span", spans.Spans)
	}

	code, body = get(t, s, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, s, "/buildinfo")
	var bi struct {
		Component string `json:"component"`
		Go        string `json:"go"`
	}
	if code != 200 || json.Unmarshal([]byte(body), &bi) != nil {
		t.Fatalf("/buildinfo = %d %q", code, body)
	}
	if bi.Component != "obs-test" || !strings.HasPrefix(bi.Go, "go") {
		t.Fatalf("/buildinfo = %+v", bi)
	}

	code, body = get(t, s, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ = get(t, s, "/nope"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, _ = get(t, s, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d, want 200", code)
	}
}

func TestProfileEndpoint(t *testing.T) {
	s, _ := startTestServer(t)

	// No feed wired: 503.
	if code, _ := get(t, s, "/profile"); code != 503 {
		t.Fatalf("/profile without feed = %d, want 503", code)
	}

	// Feed with a requester that publishes twice (the pipeline shape): the
	// served document must be the fresh (second) one.
	feed := NewProfileFeed()
	feed.SetRequester(func() {
		feed.Deliver([]byte(`{"stale":true}`))
		go feed.Deliver([]byte(`{"fresh":true}`))
	}, 2)
	s.SetProfileFeed(feed)
	code, body := get(t, s, "/profile")
	if code != 200 || !strings.Contains(body, "fresh") {
		t.Fatalf("/profile = %d %q, want the fresh document", code, body)
	}

	// After Final, Gets return immediately without requesting.
	feed.SetRequester(func() { t.Error("requester called after Final") }, 2)
	feed.Final([]byte(`{"final":true}`))
	code, body = get(t, s, "/profile")
	if code != 200 || !strings.Contains(body, "final") {
		t.Fatalf("/profile after Final = %d %q", code, body)
	}
}

func TestProfileFeedWaits(t *testing.T) {
	feed := NewProfileFeed()
	var mu sync.Mutex
	requested := 0
	feed.SetRequester(func() {
		mu.Lock()
		requested++
		mu.Unlock()
		go func() {
			time.Sleep(10 * time.Millisecond)
			feed.Deliver([]byte(`{"n":1}`))
		}()
	}, 1)
	doc, err := feed.Get(context.Background())
	if err != nil || !strings.Contains(string(doc), `"n":1`) {
		t.Fatalf("Get = %q, %v", doc, err)
	}
	mu.Lock()
	if requested != 1 {
		t.Fatalf("requested = %d, want 1", requested)
	}
	mu.Unlock()

	// A canceled context falls back to the latest document.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	feed.SetRequester(func() {}, 1) // never delivers
	doc, err = feed.Get(ctx)
	if err != nil || doc == nil {
		t.Fatalf("Get with canceled ctx = %q, %v; want latest fallback", doc, err)
	}

	// Nil feed and empty feed error cleanly.
	var nilFeed *ProfileFeed
	if _, err := nilFeed.Get(context.Background()); err == nil {
		t.Fatal("nil feed Get must error")
	}
	empty := NewProfileFeed()
	if _, err := empty.Get(ctx); err == nil {
		t.Fatal("empty feed Get with dead ctx must error")
	}
}

// readSSEEvent reads one "event:"/"data:" pair from an SSE stream.
func readSSEEvent(t *testing.T, br *bufio.Reader) (event, data string) {
	t.Helper()
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read: %v", err)
		}
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			return event, data
		}
	}
}

func TestProgressSSE(t *testing.T) {
	s, _ := startTestServer(t)

	// No estimator wired: 503.
	if code, _ := get(t, s, "/progress"); code != 503 {
		t.Fatalf("/progress without estimator = %d, want 503", code)
	}

	est := telemetry.NewRateEstimator(1000)
	est.Update(250)
	est.SetPhase("analyze")
	s.SetEstimator(est)

	// once=1: exactly one event, then the stream closes.
	resp, err := http.Get("http://" + s.Addr() + "/progress?once=1")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Count(string(body), "event: ") != 1 {
		t.Fatalf("once=1 stream = %q, want exactly one event", body)
	}
	var ev progressEvent
	data := strings.TrimSpace(strings.SplitN(strings.Split(string(body), "data: ")[1], "\n", 2)[0])
	if err := json.Unmarshal([]byte(data), &ev); err != nil {
		t.Fatalf("event payload %q: %v", data, err)
	}
	if ev.Done != 250 || ev.Total != 1000 || ev.Pct != 25 || ev.Phase != "analyze" {
		t.Fatalf("event = %+v", ev)
	}

	// Streaming: a finished estimator ends the stream after the final event.
	resp, err = http.Get("http://" + s.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	readSSEEvent(t, br) // initial
	est.Update(1000)
	est.Finish()
	deadline := time.After(5 * time.Second)
	for {
		done := make(chan struct{})
		var event, data string
		go func() { event, data = readSSEEvent(t, br); close(done) }()
		select {
		case <-done:
		case <-deadline:
			t.Fatal("stream did not deliver the finished event in time")
		}
		var ev progressEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("event %s payload %q: %v", event, data, err)
		}
		if ev.Finished {
			break
		}
	}
	// After the finished event the server closes the stream.
	if _, err := br.ReadString(0); err != io.EOF {
		t.Fatalf("stream after finish: err = %v, want EOF", err)
	}
}

// TestCloseTerminatesSSE: Close must not hang on an open SSE stream.
func TestCloseTerminatesSSE(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Start(Options{Addr: "127.0.0.1:0", Registry: reg, Component: "obs-test"})
	if err != nil {
		t.Fatal(err)
	}
	est := telemetry.NewRateEstimator(1000) // never finishes
	s.SetEstimator(est)
	resp, err := http.Get("http://" + s.Addr() + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an open SSE stream")
	}
}

func TestStartLogsAddress(t *testing.T) {
	var sb strings.Builder
	s, err := Start(Options{Addr: "127.0.0.1:0", Log: &sb, Component: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := fmt.Sprintf("obs: listening on http://%s\n", s.Addr())
	if sb.String() != want {
		t.Fatalf("log line = %q, want %q", sb.String(), want)
	}
	// Nil-server setters are safe.
	var nilS *Server
	nilS.SetEstimator(nil)
	nilS.SetProfileFeed(nil)
	if err := nilS.Close(); err != nil {
		t.Fatal(err)
	}
}
