package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/report"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("fig1", "Fig. 1: trms definition examples (1a and 1b)", runFig1)
	registerExperiment("fig2", "Fig. 2: producer-consumer — rms=1 vs trms=n", runFig2)
	registerExperiment("fig3", "Fig. 3: buffered external read — rms=1 vs trms=n", runFig3)
	registerExperiment("fig4", "Fig. 4: mysql_select worst-case plots under rms and trms", runFig4)
	registerExperiment("fig5", "Fig. 5: vips im_generate worst-case plots under rms and trms", runFig5)
	registerExperiment("fig6", "Fig. 6: buf_flush_buffered_writes curve fitting", runFig6)
	registerExperiment("fig7", "Fig. 7: wbuffer_write_thread profile richness by input source", runFig7)
	registerExperiment("fig8", "Fig. 8: Protocol::send_eof workload plots", runFig8)
	registerExperiment("fig9", "Fig. 9: thread-induced vs external input per routine (mysqld, vips)", runFig9)
}

func runFig1(cfg Config) error {
	for _, name := range []string{"fig1a", "fig1b"} {
		p, err := profileWorkload(name, cfg, core.Options{}, workloads.Params{})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%s:\n", name)
		var rows [][]string
		for _, rn := range p.RoutineNames() {
			a := p.Routines[rn].Merged()
			rows = append(rows, []string{rn,
				fmt.Sprint(a.SumTRMS), fmt.Sprint(a.SumRMS),
				fmt.Sprint(a.InducedThread), fmt.Sprint(a.InducedExternal)})
		}
		report.Table(cfg.Out, []string{"routine", "trms", "rms", "induced(thread)", "induced(external)"}, rows)
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out, "expected: fig1a f has trms=2 rms=1; fig1b f has trms=2 rms=1, h has trms=1 rms=1")
	return nil
}

func runFig2(cfg Config) error {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	var rows [][]string
	for _, n := range sizes {
		p, err := profileWorkload("producer-consumer", cfg, core.Options{}, workloads.Params{Size: n})
		if err != nil {
			return err
		}
		a := p.Routine("consumer").Merged()
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprint(a.SumTRMS), fmt.Sprint(a.SumRMS)})
	}
	fmt.Fprintln(cfg.Out, "consumer routine input sizes by produced values n (paper: trms=n, rms=1):")
	report.Table(cfg.Out, []string{"n", "trms", "rms"}, rows)
	return nil
}

func runFig3(cfg Config) error {
	sizes := []int{8, 16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	var rows [][]string
	for _, n := range sizes {
		p, err := profileWorkload("external-read", cfg, core.Options{}, workloads.Params{Size: n})
		if err != nil {
			return err
		}
		a := p.Routine("externalRead").Merged()
		rows = append(rows, []string{fmt.Sprint(n), fmt.Sprint(a.SumTRMS), fmt.Sprint(a.SumRMS),
			fmt.Sprint(a.InducedExternal)})
	}
	fmt.Fprintln(cfg.Out, "externalRead input sizes by iterations n (paper: trms=n, rms~1):")
	report.Table(cfg.Out, []string{"n", "trms", "rms", "external"}, rows)
	return nil
}

// metricPlots prints a routine's worst-case plots under both metrics with
// power-law fits, the presentation of Figures 4, 5 and 6.
func metricPlots(cfg Config, p *core.Profile, routine string) error {
	rp := p.Routine(routine)
	if rp == nil {
		return fmt.Errorf("routine %s not profiled", routine)
	}
	merged := rp.Merged()
	for _, metric := range []struct {
		name string
		hist map[uint64]*core.Point
	}{{"rms", merged.ByRMS}, {"trms", merged.ByTRMS}} {
		pts := report.WorstCase(metric.hist)
		fmt.Fprintf(cfg.Out, "\n%s — worst-case cost vs %s (%d distinct input sizes)\n",
			routine, metric.name, len(pts))
		report.Scatter(cfg.Out, "", pts, 64, 12)
		if pl, err := fit.FitPowerLaw(pts); err == nil {
			fmt.Fprintf(cfg.Out, "  power-law fit: cost ~ %s\n", pl)
		}
		if best, err := fit.Best(pts); err == nil {
			fmt.Fprintf(cfg.Out, "  best model:    %s\n", best)
		}
	}
	return nil
}

func runFig4(cfg Config) error {
	p, err := profileWorkload("mysqld", cfg, core.Options{}, workloads.Params{})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "mysql_select scans tables of geometrically increasing size through a 4-frame buffer pool.")
	fmt.Fprintln(cfg.Out, "Paper: against rms the running time appears to grow superlinearly (the pool bounds rms);")
	fmt.Fprintln(cfg.Out, "against trms the growth is linear, the routine's true behaviour.")
	return metricPlots(cfg, p, "mysql_select")
}

func runFig5(cfg Config) error {
	p, err := profileWorkload("vips", cfg, core.Options{}, workloads.Params{})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "im_generate processes regions of varying height through a recycled 3-line cache.")
	fmt.Fprintln(cfg.Out, "Paper: rms saturates at the cache footprint; trms tracks the region size, restoring linearity.")
	return metricPlots(cfg, p, "im_generate")
}

func runFig6(cfg Config) error {
	params := workloads.Params{Threads: 6, Seed: 3}
	p, err := profileWorkload("mysqld", cfg, core.Options{}, params)
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "buf_flush_buffered_writes drains k buffered changes and insertion-sorts them (O(k^2)).")
	fmt.Fprintln(cfg.Out, "Paper: the trms plot reveals the superlinear bottleneck; the rms plot hides it.")
	return metricPlots(cfg, p, "buf_flush_buffered_writes")
}

func runFig7(cfg Config) error {
	variants := []struct {
		label string
		opts  core.Options
	}{
		{"(a) rms only", core.Options{RMSOnly: true}},
		{"(b) trms, external input only", core.Options{DisableThreadInduced: true}},
		{"(c) trms, external + thread input", core.Options{}},
	}
	var rows [][]string
	for _, v := range variants {
		p, err := profileWorkload("vips", cfg, v.opts, workloads.Params{})
		if err != nil {
			return err
		}
		rp := p.Routine("wbuffer_write_thread")
		if rp == nil {
			return fmt.Errorf("wbuffer_write_thread not profiled")
		}
		merged := rp.Merged()
		rows = append(rows, []string{v.label,
			fmt.Sprint(merged.Calls),
			fmt.Sprint(rp.DistinctTRMS()),
			fmt.Sprintf("%.1f%%", 100*report.InducedFraction(merged))})
	}
	fmt.Fprintln(cfg.Out, "wbuffer_write_thread: distinct input-size values by tracked input source")
	fmt.Fprintln(cfg.Out, "(paper: rms collapses all 110 calls onto 2 values; adding external and thread")
	fmt.Fprintln(cfg.Out, " input grows the number of points and the meaningfulness of the plot)")
	report.Table(cfg.Out, []string{"configuration", "calls", "distinct sizes", "induced share"}, rows)
	return nil
}

func runFig8(cfg Config) error {
	p, err := profileWorkload("mysqld", cfg, core.Options{}, workloads.Params{})
	if err != nil {
		return err
	}
	rp := p.Routine("Protocol::send_eof")
	if rp == nil {
		return fmt.Errorf("Protocol::send_eof not profiled")
	}
	merged := rp.Merged()
	fmt.Fprintln(cfg.Out, "Protocol::send_eof workload plots (activations per distinct input size):")
	for _, metric := range []struct {
		name string
		hist map[uint64]*core.Point
	}{{"rms", merged.ByRMS}, {"trms", merged.ByTRMS}} {
		pts := report.Workload(metric.hist)
		fmt.Fprintf(cfg.Out, "\nworkload plot vs %s (%d distinct sizes, %d calls)\n",
			metric.name, len(pts), merged.Calls)
		report.Scatter(cfg.Out, "", pts, 64, 10)
	}
	return nil
}

func runFig9(cfg Config) error {
	for _, bench := range []string{"mysqld", "vips"} {
		p, err := profileWorkload(bench, cfg, core.Options{}, workloads.Params{})
		if err != nil {
			return err
		}
		splits := report.PerRoutineInduced(p)
		fmt.Fprintf(cfg.Out, "%s — routines by share of induced input (top %d):\n", bench, min(len(splits), 12))
		var rows [][]string
		for _, s := range splits[:min(len(splits), 12)] {
			rows = append(rows, []string{s.Name,
				fmt.Sprintf("%.1f%%", s.InducedPct),
				fmt.Sprintf("%.1f%%", s.ThreadPct),
				fmt.Sprintf("%.1f%%", s.ExternalPct)})
		}
		report.Table(cfg.Out, []string{"routine", "induced share of trms", "thread part", "external part"}, rows)
		fmt.Fprintln(cfg.Out)
	}
	fmt.Fprintln(cfg.Out, "paper: most induced input of MySQL routines is external; vips routines are thread-dominated")
	return nil
}
