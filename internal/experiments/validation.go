package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/trace/pipeline"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("validation",
		"Trace & replay validation report: structural, correctness, determinism, performance",
		runValidation)
}

// validationCase is one recorded workload execution the validation levels
// share.
type validationCase struct {
	name   string
	suite  string
	params workloads.Params
	inline []byte // canonical export of the inline profile
	tr     *trace.Trace
}

// runValidation emits the leveled validation report behind docs/VALIDATION.md
// as markdown: each level escalates from wire-format integrity to profile
// correctness, scheduling-independence and finally analysis performance.
// Regenerate the document with
//
//	go run ./cmd/aprof-experiments -run validation -raw -out docs/VALIDATION.md -benchjson BENCH_PIPELINE.json
func runValidation(cfg Config) error {
	w := cfg.Out
	scale := 1
	if !cfg.Quick {
		scale = 2
	}
	cases := []*validationCase{
		{name: "producer-consumer", suite: "micro", params: workloads.Params{Size: 24 * scale}},
		{name: "fig1a", suite: "micro", params: workloads.Params{Size: 16 * scale}},
		{name: "mysqld", suite: "mysql", params: workloads.Params{Size: 8 * scale, Threads: 4}},
		{name: "vips", suite: "parsec", params: workloads.Params{Size: 8 * scale, Threads: 3}},
		{name: "dedup", suite: "parsec", params: workloads.Params{Size: 8 * scale, Threads: 3}},
	}
	for _, c := range cases {
		prof := core.New(core.Options{})
		rec := trace.NewRecorder()
		if _, err := workloads.RunByName(c.name, c.params, prof, rec); err != nil {
			return fmt.Errorf("validation: recording %s: %w", c.name, err)
		}
		var err error
		if c.inline, err = prof.Profile().Export(); err != nil {
			return err
		}
		c.tr = rec.Trace()
	}

	fmt.Fprintf(w, "# Validation report\n\n")
	fmt.Fprintf(w, "Levels: **L1 structural** (wire format round-trips), **L2 correctness**\n")
	fmt.Fprintf(w, "(inline = sequential replay = parallel pipeline, byte-identical exports),\n")
	fmt.Fprintf(w, "**L3 determinism** (worker count, repetition and tie seed never change the\n")
	fmt.Fprintf(w, "result), **L4 performance** (offline analysis throughput and the worker\n")
	fmt.Fprintf(w, "scaling curve). Regenerate with\n")
	fmt.Fprintf(w, "`go run ./cmd/aprof-experiments -run validation -raw -out docs/VALIDATION.md -benchjson BENCH_PIPELINE.json`.\n\n")

	if err := validateStructural(w, cases); err != nil {
		return err
	}
	if err := validateCorrectness(w, cases); err != nil {
		return err
	}
	if err := validateDeterminism(w, cases); err != nil {
		return err
	}
	return validatePerformance(w, cfg)
}

// validateStructural checks the binary codec (encode/decode round trip) and
// the shard combinator (split/combine identity, version-mismatch rejection)
// on every recorded trace.
func validateStructural(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L1 — structural\n\n")
	fmt.Fprintf(w, "| workload | suite | events | threads | encoded bytes | decode round-trip | shard round-trip |\n")
	fmt.Fprintf(w, "|---|---|---:|---:|---:|---|---|\n")
	for _, c := range cases {
		var buf bytes.Buffer
		if _, err := c.tr.Encode(&buf); err != nil {
			return fmt.Errorf("validation: encoding %s: %w", c.name, err)
		}
		size := buf.Len()
		got, err := trace.Decode(&buf)
		if err != nil {
			return fmt.Errorf("validation: decoding %s: %w", c.name, err)
		}
		roundTrip := tracesEqual(c.tr, got)

		// Split the trace into per-thread shards and combine them back.
		shardOK := true
		var shards []*trace.Trace
		for i := range c.tr.Threads {
			shards = append(shards, &trace.Trace{
				Routines: c.tr.Routines,
				Syncs:    c.tr.Syncs,
				Threads:  c.tr.Threads[i : i+1],
			})
		}
		combined, err := trace.Combine(shards...)
		if err != nil || !mergedEqual(c.tr, combined) {
			shardOK = false
		}
		if len(shards) > 0 {
			bad := &trace.Trace{Version: 99, Routines: c.tr.Routines, Syncs: c.tr.Syncs}
			if _, err := trace.Combine(shards[0], bad); err == nil {
				shardOK = false // version mismatch must be rejected
			}
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %s | %s |\n",
			c.name, c.suite, c.tr.NumEvents(), len(c.tr.Threads), size, pass(roundTrip), pass(shardOK))
	}
	fmt.Fprintln(w)
	return nil
}

// validateCorrectness holds the three analyzers to byte-identical exports.
func validateCorrectness(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L2 — correctness (differential)\n\n")
	fmt.Fprintf(w, "Inline profile vs sequential replay (`core.FromTrace`) vs parallel\n")
	fmt.Fprintf(w, "pipeline (`pipeline.Analyze`, 4 workers), compared on `Profile.Export`.\n\n")
	fmt.Fprintf(w, "| workload | suite | routines | inline = replay | inline = pipeline |\n")
	fmt.Fprintf(w, "|---|---|---:|---|---|\n")
	for _, c := range cases {
		seq, err := core.FromTrace(c.tr, 1, core.Options{})
		if err != nil {
			return err
		}
		seqB, err := seq.Export()
		if err != nil {
			return err
		}
		par, err := pipeline.Analyze(c.tr, pipeline.Options{TieSeed: 1, Workers: 4})
		if err != nil {
			return err
		}
		parB, err := par.Export()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %d | %s | %s |\n", c.name, c.suite, len(seq.Routines),
			pass(bytes.Equal(seqB, c.inline)), pass(bytes.Equal(parB, c.inline)))
	}
	fmt.Fprintln(w)
	return nil
}

// validateDeterminism re-analyzes one plan at several worker counts, re-runs
// it, and varies the tie seed (machine timestamps are unique, so the seed
// must not matter).
func validateDeterminism(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L3 — determinism\n\n")
	fmt.Fprintf(w, "| workload | workers 1/2/4/8 identical | repeated run identical | tie-seed invariant |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	for _, c := range cases {
		workersOK := true
		var first []byte
		for _, workers := range []int{1, 2, 4, 8} {
			p, err := pipeline.Analyze(c.tr, pipeline.Options{Workers: workers})
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if first == nil {
				first = b
			} else if !bytes.Equal(first, b) {
				workersOK = false
			}
		}

		plan, err := pipeline.BuildPlan(c.tr, 0, core.Options{})
		if err != nil {
			return err
		}
		repeatOK := true
		for i := 0; i < 3; i++ {
			p, err := plan.Run(4)
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if !bytes.Equal(first, b) {
				repeatOK = false
			}
		}

		seedOK := true
		for _, seed := range []int64{1, 42} {
			p, err := pipeline.Analyze(c.tr, pipeline.Options{TieSeed: seed, Workers: 2})
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if !bytes.Equal(first, b) {
				seedOK = false
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.name, pass(workersOK), pass(repeatOK), pass(seedOK))
	}
	fmt.Fprintln(w)
	return nil
}

// pipelineBench is the machine-readable record of the performance level,
// written to the path in Config.BenchJSON (BENCH_PIPELINE.json at the repo
// root).
type pipelineBench struct {
	Benchmark  string              `json:"benchmark"`
	Workload   string              `json:"workload"`
	Size       int                 `json:"size"`
	Threads    int                 `json:"threads"`
	Events     int                 `json:"events"`
	NumCPU     int                 `json:"num_cpu"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Reps       int                 `json:"reps"`
	Sequential float64             `json:"sequential_ms"`
	PreScan    float64             `json:"prescan_ms"`
	Workers    []pipelineBenchStep `json:"workers"`
	Note       string              `json:"note"`
}

type pipelineBenchStep struct {
	Workers float64 `json:"workers"`
	Millis  float64 `json:"ms"`
	Speedup float64 `json:"speedup"`
}

// validatePerformance times offline analysis of a recorded mysqld execution:
// the sequential replayer against the pipeline at increasing worker counts,
// min-of-N to suppress scheduling noise.
func validatePerformance(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "## L4 — performance\n\n")

	params := workloads.Params{Size: 24, Threads: 8}
	reps := 30
	if cfg.Quick {
		params.Size = 8
		reps = 5
	}
	rec := trace.NewRecorder()
	if _, err := workloads.RunByName("mysqld", params, rec); err != nil {
		return err
	}
	tr := rec.Trace()
	events := tr.NumEvents()

	var firstErr error
	minOf := func(f func() error) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil && firstErr == nil {
				firstErr = err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	seq := minOf(func() error {
		_, err := core.FromTrace(tr, 0, core.Options{})
		return err
	})
	prescan := minOf(func() error {
		_, err := pipeline.BuildPlan(tr, 0, core.Options{})
		return err
	})

	bench := pipelineBench{
		Benchmark:  "pipeline-analyze",
		Workload:   "mysqld",
		Size:       params.Size,
		Threads:    params.Threads,
		Events:     events,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Sequential: ms(seq),
		PreScan:    ms(prescan),
		Note: "min-of-reps wall time; speedup is sequential replay time over " +
			"pipeline time for the same trace and options",
	}

	fmt.Fprintf(w, "Offline analysis of a recorded mysqld execution (%d events, size %d,\n",
		events, params.Size)
	fmt.Fprintf(w, "%d guest threads), min of %d runs, on %d CPU(s) (GOMAXPROCS %d).\n\n",
		params.Threads, reps, bench.NumCPU, bench.GOMAXPROCS)
	fmt.Fprintf(w, "| analyzer | time (ms) | events/s | speedup vs sequential |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|\n")
	fmt.Fprintf(w, "| sequential replay (`core.FromTrace`) | %.2f | %.1fM | 1.00x |\n",
		ms(seq), float64(events)/seq.Seconds()/1e6)
	for _, workers := range []int{1, 2, 4, 8} {
		d := minOf(func() error {
			_, err := pipeline.Analyze(tr, pipeline.Options{Workers: workers})
			return err
		})
		speedup := float64(seq) / float64(d)
		bench.Workers = append(bench.Workers, pipelineBenchStep{
			Workers: float64(workers), Millis: ms(d), Speedup: speedup,
		})
		fmt.Fprintf(w, "| pipeline, %d worker(s) | %.2f | %.1fM | %.2fx |\n",
			workers, ms(d), float64(events)/d.Seconds()/1e6, speedup)
	}
	if firstErr != nil {
		return firstErr
	}
	fmt.Fprintf(w, "\nThe sequential pre-scan takes %.2f ms of each pipeline run and bounds\n", ms(prescan))
	fmt.Fprintf(w, "parallel scaling by Amdahl's law. On a single-CPU host (as above when\n")
	fmt.Fprintf(w, "GOMAXPROCS is 1) workers cannot run simultaneously, so any speedup is\n")
	fmt.Fprintf(w, "purely algorithmic: the pipeline skips the merged-event materialization,\n")
	fmt.Fprintf(w, "the per-event tool dispatch and the per-event thread-view lookup of the\n")
	fmt.Fprintf(w, "sequential replayer, packs read annotations into single words, and uses\n")
	fmt.Fprintf(w, "32-bit shadow cells whenever the pre-scan proves timestamps fit. On\n")
	fmt.Fprintf(w, "multi-core hosts the per-thread analyzers additionally run in parallel.\n")

	if cfg.BenchJSON != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		// One extra instrumented analysis, outside the timing loops,
		// captures the pipeline metric snapshot accompanying the numbers.
		reg := telemetry.NewRegistry()
		if _, err := pipeline.Analyze(tr, pipeline.Options{Workers: 4, Telemetry: reg}); err != nil {
			return err
		}
		if err := writeBenchTelemetry(cfg, reg); err != nil {
			return err
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func pass(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// tracesEqual compares two traces field by field.
func tracesEqual(a, b *trace.Trace) bool {
	if a.EffectiveVersion() != b.EffectiveVersion() ||
		len(a.Routines) != len(b.Routines) || len(a.Syncs) != len(b.Syncs) ||
		len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Routines {
		if a.Routines[i] != b.Routines[i] {
			return false
		}
	}
	for i := range a.Syncs {
		if a.Syncs[i] != b.Syncs[i] {
			return false
		}
	}
	for i := range a.Threads {
		at, bt := &a.Threads[i], &b.Threads[i]
		if at.ID != bt.ID || len(at.Events) != len(bt.Events) {
			return false
		}
		for j := range at.Events {
			if at.Events[j] != bt.Events[j] {
				return false
			}
		}
	}
	return true
}

// mergedEqual compares the merged event streams of two traces.
func mergedEqual(a, b *trace.Trace) bool {
	am, bm := trace.Merge(a, 7), trace.Merge(b, 7)
	if len(am) != len(bm) {
		return false
	}
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}
