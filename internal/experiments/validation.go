package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/trace/pipeline"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("validation",
		"Trace & replay validation report: structural, correctness, determinism, performance",
		runValidation)
}

// validationCase is one recorded workload execution the validation levels
// share.
type validationCase struct {
	name   string
	suite  string
	params workloads.Params
	inline []byte // canonical export of the inline profile
	tr     *trace.Trace
}

// runValidation emits the leveled validation report behind docs/VALIDATION.md
// as markdown: each level escalates from wire-format integrity to profile
// correctness, scheduling-independence and finally analysis performance.
// Regenerate the document with
//
//	go run ./cmd/aprof-experiments -run validation -raw -out docs/VALIDATION.md -benchjson BENCH_PIPELINE.json
func runValidation(cfg Config) error {
	w := cfg.Out
	scale := 1
	if !cfg.Quick {
		scale = 2
	}
	cases := []*validationCase{
		{name: "producer-consumer", suite: "micro", params: workloads.Params{Size: 24 * scale}},
		{name: "fig1a", suite: "micro", params: workloads.Params{Size: 16 * scale}},
		{name: "mysqld", suite: "mysql", params: workloads.Params{Size: 8 * scale, Threads: 4}},
		{name: "vips", suite: "parsec", params: workloads.Params{Size: 8 * scale, Threads: 3}},
		{name: "dedup", suite: "parsec", params: workloads.Params{Size: 8 * scale, Threads: 3}},
	}
	for _, c := range cases {
		prof := core.New(core.Options{})
		rec := trace.NewRecorder()
		if _, err := workloads.RunByName(c.name, c.params, prof, rec); err != nil {
			return fmt.Errorf("validation: recording %s: %w", c.name, err)
		}
		var err error
		if c.inline, err = prof.Profile().Export(); err != nil {
			return err
		}
		c.tr = rec.Trace()
	}

	fmt.Fprintf(w, "# Validation report\n\n")
	fmt.Fprintf(w, "Levels: **L1 structural** (wire format round-trips), **L2 correctness**\n")
	fmt.Fprintf(w, "(inline = sequential replay = parallel pipeline, byte-identical exports),\n")
	fmt.Fprintf(w, "**L3 determinism** (worker count, repetition and tie seed never change the\n")
	fmt.Fprintf(w, "result), **L4 performance** (offline analysis throughput and the worker\n")
	fmt.Fprintf(w, "scaling curve). Regenerate with\n")
	fmt.Fprintf(w, "`go run ./cmd/aprof-experiments -run validation -raw -out docs/VALIDATION.md -benchjson BENCH_PIPELINE.json`.\n\n")

	if err := validateStructural(w, cases); err != nil {
		return err
	}
	if err := validateCorrectness(w, cases); err != nil {
		return err
	}
	if err := validateDeterminism(w, cases); err != nil {
		return err
	}
	return validatePerformance(w, cfg)
}

// validateStructural checks the binary codec (encode/decode round trip) and
// the shard combinator (split/combine identity, version-mismatch rejection)
// on every recorded trace.
func validateStructural(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L1 — structural\n\n")
	fmt.Fprintf(w, "| workload | suite | events | threads | encoded bytes | decode round-trip | shard round-trip |\n")
	fmt.Fprintf(w, "|---|---|---:|---:|---:|---|---|\n")
	for _, c := range cases {
		var buf bytes.Buffer
		if _, err := c.tr.Encode(&buf); err != nil {
			return fmt.Errorf("validation: encoding %s: %w", c.name, err)
		}
		size := buf.Len()
		got, err := trace.Decode(&buf)
		if err != nil {
			return fmt.Errorf("validation: decoding %s: %w", c.name, err)
		}
		roundTrip := tracesEqual(c.tr, got)

		// Split the trace into per-thread shards and combine them back.
		shardOK := true
		var shards []*trace.Trace
		for i := range c.tr.Threads {
			shards = append(shards, &trace.Trace{
				Routines: c.tr.Routines,
				Syncs:    c.tr.Syncs,
				Threads:  c.tr.Threads[i : i+1],
			})
		}
		combined, err := trace.Combine(shards...)
		if err != nil || !mergedEqual(c.tr, combined) {
			shardOK = false
		}
		if len(shards) > 0 {
			bad := &trace.Trace{Version: 99, Routines: c.tr.Routines, Syncs: c.tr.Syncs}
			if _, err := trace.Combine(shards[0], bad); err == nil {
				shardOK = false // version mismatch must be rejected
			}
		}
		fmt.Fprintf(w, "| %s | %s | %d | %d | %d | %s | %s |\n",
			c.name, c.suite, c.tr.NumEvents(), len(c.tr.Threads), size, pass(roundTrip), pass(shardOK))
	}
	fmt.Fprintln(w)
	return nil
}

// validateCorrectness holds the three analyzers to byte-identical exports.
func validateCorrectness(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L2 — correctness (differential)\n\n")
	fmt.Fprintf(w, "Inline profile vs sequential replay (`core.FromTrace`) vs parallel\n")
	fmt.Fprintf(w, "pipeline (`pipeline.Analyze`, 4 workers), compared on `Profile.Export`.\n\n")
	fmt.Fprintf(w, "| workload | suite | routines | inline = replay | inline = pipeline |\n")
	fmt.Fprintf(w, "|---|---|---:|---|---|\n")
	for _, c := range cases {
		seq, err := core.FromTrace(c.tr, 1, core.Options{})
		if err != nil {
			return err
		}
		seqB, err := seq.Export()
		if err != nil {
			return err
		}
		par, err := pipeline.Analyze(c.tr, pipeline.Options{TieSeed: 1, Workers: 4})
		if err != nil {
			return err
		}
		parB, err := par.Export()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %s | %s | %d | %s | %s |\n", c.name, c.suite, len(seq.Routines),
			pass(bytes.Equal(seqB, c.inline)), pass(bytes.Equal(parB, c.inline)))
	}
	fmt.Fprintln(w)
	return nil
}

// validateDeterminism re-analyzes one plan at several worker counts, re-runs
// it, and varies the tie seed (machine timestamps are unique, so the seed
// must not matter).
func validateDeterminism(w io.Writer, cases []*validationCase) error {
	fmt.Fprintf(w, "## L3 — determinism\n\n")
	fmt.Fprintf(w, "| workload | workers 1/2/4/8 identical | repeated run identical | tie-seed invariant |\n")
	fmt.Fprintf(w, "|---|---|---|---|\n")
	for _, c := range cases {
		workersOK := true
		var first []byte
		for _, workers := range []int{1, 2, 4, 8} {
			p, err := pipeline.Analyze(c.tr, pipeline.Options{Workers: workers})
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if first == nil {
				first = b
			} else if !bytes.Equal(first, b) {
				workersOK = false
			}
		}

		plan, err := pipeline.BuildPlan(c.tr, 0, core.Options{})
		if err != nil {
			return err
		}
		repeatOK := true
		for i := 0; i < 3; i++ {
			p, err := plan.Run(4)
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if !bytes.Equal(first, b) {
				repeatOK = false
			}
		}

		seedOK := true
		for _, seed := range []int64{1, 42} {
			p, err := pipeline.Analyze(c.tr, pipeline.Options{TieSeed: seed, Workers: 2})
			if err != nil {
				return err
			}
			b, err := p.Export()
			if err != nil {
				return err
			}
			if !bytes.Equal(first, b) {
				seedOK = false
			}
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.name, pass(workersOK), pass(repeatOK), pass(seedOK))
	}
	fmt.Fprintln(w)
	return nil
}

// pipelineBench is the machine-readable record of the performance level,
// written to the path in Config.BenchJSON (BENCH_PIPELINE.json at the repo
// root).
type pipelineBench struct {
	Benchmark  string              `json:"benchmark"`
	Workload   string              `json:"workload"`
	Size       int                 `json:"size"`
	Threads    int                 `json:"threads"`
	Events     int                 `json:"events"`
	NumCPU     int                 `json:"num_cpu"`
	Reps       int                 `json:"reps"`
	Annotated  bool                `json:"annotated"`
	Sequential float64             `json:"sequential_ms"`
	PlanMS     float64             `json:"annotated_plan_ms"`
	PreScan    float64             `json:"prescan_ms"`
	Scaling    []pipelineBenchStep `json:"scaling"`
	Fallback   []pipelineBenchStep `json:"fallback_scaling"`
	Note       string              `json:"note"`
}

// pipelineBenchStep is one point on a scaling curve: the pipeline run at
// Workers workers with GOMAXPROCS set to the same value.
type pipelineBenchStep struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workers    int     `json:"workers"`
	Millis     float64 `json:"ms"`
	Speedup    float64 `json:"speedup"`
}

// validatePerformance times offline analysis of a recorded mysqld execution
// large enough (10M+ events at full scale) for per-event work to dominate:
// the sequential replayer against the annotated pipeline route and the
// streaming fallback, swept over GOMAXPROCS 1/2/4/8 with the worker count
// matched, min-of-N to suppress scheduling noise. The trace is recorded
// through the streaming recorder, so it carries stamp annotations and the
// pipeline needs no pre-scan; the fallback rows strip them first.
func validatePerformance(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "## L4 — performance\n\n")

	params := workloads.Params{Size: 160, Threads: 8}
	reps := 5
	if cfg.Quick {
		params.Size = 8
		reps = 3
	}
	var buf bytes.Buffer
	srec := trace.NewStreamRecorder(&buf)
	if _, err := workloads.RunByName("mysqld", params, srec); err != nil {
		return err
	}
	if err := srec.Close(); err != nil {
		return err
	}
	tr, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return err
	}
	buf = bytes.Buffer{} // release the encoded copy before timing
	events := tr.NumEvents()
	stripped := *tr
	stripped.Threads = append([]trace.ThreadTrace(nil), tr.Threads...)
	stripped.StripAnnotations()

	var firstErr error
	minOf := func(f func() error) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil && firstErr == nil {
				firstErr = err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	seq := minOf(func() error {
		_, err := core.FromTrace(tr, 0, core.Options{})
		return err
	})
	plan := minOf(func() error {
		p, err := pipeline.BuildPlan(tr, 0, core.Options{})
		if err == nil && !p.Annotated() {
			err = fmt.Errorf("annotated trace did not take the fast plan path")
		}
		return err
	})
	prescan := minOf(func() error {
		_, err := pipeline.BuildPlan(&stripped, 0, core.Options{})
		return err
	})

	bench := pipelineBench{
		Benchmark:  "pipeline-analyze",
		Workload:   "mysqld",
		Size:       params.Size,
		Threads:    params.Threads,
		Events:     events,
		NumCPU:     runtime.NumCPU(),
		Reps:       reps,
		Annotated:  tr.Annotated,
		Sequential: ms(seq),
		PlanMS:     ms(plan),
		PreScan:    ms(prescan),
		Note: "min-of-reps wall time; each scaling point runs the pipeline with " +
			"GOMAXPROCS set to its worker count; speedup is sequential replay " +
			"time over pipeline time for the same trace and options; points " +
			"with gomaxprocs > num_cpu time-slice one core and cannot scale",
	}

	fmt.Fprintf(w, "Offline analysis of a stream-recorded (stamp-annotated) mysqld execution\n")
	fmt.Fprintf(w, "(%d events, size %d, %d guest threads), min of %d runs, on a host\n",
		events, params.Size, params.Threads, reps)
	fmt.Fprintf(w, "with %d CPU(s). Every pipeline row sets GOMAXPROCS to its worker count;\n", bench.NumCPU)
	fmt.Fprintf(w, "rows with more workers than CPUs time-slice the same cores and measure\n")
	fmt.Fprintf(w, "scheduling overhead, not scaling — only rows with workers <= %d CPU(s)\n", bench.NumCPU)
	fmt.Fprintf(w, "can show parallel speedup on this host.\n\n")
	fmt.Fprintf(w, "| analyzer | GOMAXPROCS | time (ms) | events/s | speedup vs sequential |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|\n")
	fmt.Fprintf(w, "| sequential replay (`core.FromTrace`) | %d | %.2f | %.1fM | 1.00x |\n",
		runtime.GOMAXPROCS(0), ms(seq), float64(events)/seq.Seconds()/1e6)

	prevProcs := runtime.GOMAXPROCS(0)
	sweep := func(t *trace.Trace, label string) []pipelineBenchStep {
		var steps []pipelineBenchStep
		for _, procs := range []int{1, 2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			d := minOf(func() error {
				_, err := pipeline.Analyze(t, pipeline.Options{Workers: procs})
				return err
			})
			speedup := float64(seq) / float64(d)
			steps = append(steps, pipelineBenchStep{
				GOMAXPROCS: procs, Workers: procs, Millis: ms(d), Speedup: speedup,
			})
			fmt.Fprintf(w, "| %s, %d worker(s) | %d | %.2f | %.1fM | %.2fx |\n",
				label, procs, procs, ms(d), float64(events)/d.Seconds()/1e6, speedup)
		}
		return steps
	}
	bench.Scaling = sweep(tr, "pipeline (annotated)")
	bench.Fallback = sweep(&stripped, "pipeline (fallback pre-scan)")
	runtime.GOMAXPROCS(prevProcs)
	if firstErr != nil {
		return firstErr
	}

	fmt.Fprintf(w, "\nPlan assembly from the recorded annotations takes %.3f ms — O(#segments),\n", ms(plan))
	fmt.Fprintf(w, "independent of event count — against %.2f ms for the fallback pre-scan\n", ms(prescan))
	fmt.Fprintf(w, "over the same events, so the annotated route has no sequential phase to\n")
	fmt.Fprintf(w, "amortize: per-thread workers start immediately and scale with cores until\n")
	fmt.Fprintf(w, "the largest single thread dominates. The fallback overlaps its pre-scan\n")
	fmt.Fprintf(w, "with the workers (segments stream to analyzers as the scan produces them),\n")
	fmt.Fprintf(w, "so it is bounded by max(scan, slowest thread), not their sum. Single-core\n")
	fmt.Fprintf(w, "hosts cap both routes at 1x parallel speedup; any measured gain there is\n")
	fmt.Fprintf(w, "algorithmic (no merged-event materialization, no per-event tool dispatch,\n")
	fmt.Fprintf(w, "packed single-word stamps, 32-bit shadow cells when timestamps fit).\n")

	if cfg.BenchJSON != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		// One extra instrumented analysis, outside the timing loops,
		// captures the pipeline metric snapshot accompanying the numbers.
		reg := telemetry.NewRegistry()
		if _, err := pipeline.Analyze(tr, pipeline.Options{Workers: 4, Telemetry: reg}); err != nil {
			return err
		}
		if err := writeBenchTelemetry(cfg, reg); err != nil {
			return err
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

func pass(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// tracesEqual compares two traces field by field.
func tracesEqual(a, b *trace.Trace) bool {
	if a.EffectiveVersion() != b.EffectiveVersion() ||
		len(a.Routines) != len(b.Routines) || len(a.Syncs) != len(b.Syncs) ||
		len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Routines {
		if a.Routines[i] != b.Routines[i] {
			return false
		}
	}
	for i := range a.Syncs {
		if a.Syncs[i] != b.Syncs[i] {
			return false
		}
	}
	for i := range a.Threads {
		at, bt := &a.Threads[i], &b.Threads[i]
		if at.ID != bt.ID || len(at.Events) != len(bt.Events) {
			return false
		}
		for j := range at.Events {
			if at.Events[j] != bt.Events[j] {
				return false
			}
		}
	}
	return true
}

// mergedEqual compares the merged event streams of two traces.
func mergedEqual(a, b *trace.Trace) bool {
	am, bm := trace.Merge(a, 7), trace.Merge(b, 7)
	if len(am) != len(bm) {
		return false
	}
	for i := range am {
		if am[i] != bm[i] {
			return false
		}
	}
	return true
}
