// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3 and 6) on the Go reproduction: the case-study plots
// of mysqld and vips (Figs. 4-9), the tool-overhead comparison (Table 1 and
// Fig. 14), and the profile-richness, input-volume and induced-input
// characterizations (Figs. 15-19). Each experiment prints the same rows or
// series the paper reports; absolute numbers differ (the substrate is a
// deterministic guest machine, not the authors' Opteron testbed), but the
// shapes — who wins, by what rough factor, where trends invert — are the
// reproduction targets.
package experiments

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Config parameterizes an experiment run.
type Config struct {
	// Out receives the experiment's report.
	Out io.Writer
	// Quick shrinks workload sizes for fast runs (tests, smoke checks).
	Quick bool
	// Repeat is the number of timing repetitions for overhead experiments
	// (0 selects 3, or 1 under Quick).
	Repeat int
	// BenchJSON, when non-empty, is a path where experiments that measure
	// performance ("validation", "inline") additionally write their raw
	// numbers as JSON. A telemetry snapshot of one instrumented run is
	// written next to it (BENCH_X.json -> BENCH_X_TELEMETRY.json).
	BenchJSON string
	// Sampling is the adaptive-instrumentation tier profile-generating
	// experiments run at (the -sampling flag). The inline-overhead
	// experiment ignores it: it times every tier side by side.
	Sampling core.SamplingTier
}

// writeBenchTelemetry publishes the process-wide shadow and trace tallies
// into reg and writes its snapshot next to Config.BenchJSON
// (BENCH_INLINE.json -> BENCH_INLINE_TELEMETRY.json). No-op when BenchJSON
// is unset or reg is nil.
func writeBenchTelemetry(cfg Config, reg *telemetry.Registry) error {
	if cfg.BenchJSON == "" || reg == nil {
		return nil
	}
	shadow.PublishTelemetry(reg)
	trace.PublishTelemetry(reg)
	path := strings.TrimSuffix(cfg.BenchJSON, ".json") + "_TELEMETRY.json"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (c Config) repeats() int {
	if c.Repeat > 0 {
		return c.Repeat
	}
	if c.Quick {
		return 1
	}
	return 5
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) error
}

var all []Experiment

func registerExperiment(id, title string, run func(cfg Config) error) {
	all = append(all, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in presentation order.
func All() []Experiment {
	out := make([]Experiment, len(all))
	copy(out, all)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

func order(id string) int {
	for i, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "table1", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ablations", "inline", "validation"} {
		if id == want {
			return i
		}
	}
	return 100
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	for _, e := range all {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// IDs lists all experiment ids in presentation order.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// sizeFor picks the workload size for the configuration.
func sizeFor(s workloads.Spec, cfg Config) int {
	if cfg.Quick {
		return max(s.DefaultSize/2, 4)
	}
	return s.DefaultSize
}

// overheadSizeFor picks the (larger) size used by the timing experiments, so
// steady-state per-event analysis cost dominates over setup effects.
func overheadSizeFor(s workloads.Spec, cfg Config) int {
	if cfg.Quick {
		return max(s.DefaultSize/2, 4)
	}
	return s.DefaultSize * 3
}

// profileWorkload runs one workload under a full trms profiler at the
// configured sampling tier (unless the caller's options pick one).
func profileWorkload(name string, cfg Config, opts core.Options, params workloads.Params) (*core.Profile, error) {
	s, err := workloads.Get(name)
	if err != nil {
		return nil, err
	}
	if opts.Sampling == core.SamplingOff {
		opts.Sampling = cfg.Sampling
	}
	if params.Size == 0 {
		params.Size = sizeFor(s, cfg)
	}
	p := core.New(opts)
	if _, err := workloads.Run(s, params, p); err != nil {
		return nil, err
	}
	return p.Profile(), nil
}

// toolCase is one column of the Table 1 comparison.
type toolCase struct {
	name string
	// make returns the tool to attach (nil for native execution) and a
	// function reporting the tool's analysis-state footprint in bytes.
	make func() (guest.Tool, func() uint64)
}

func toolCases() []toolCase {
	return []toolCase{
		{"native", func() (guest.Tool, func() uint64) { return nil, func() uint64 { return 0 } }},
		{"nulgrind", func() (guest.Tool, func() uint64) {
			t := tools.NewNulgrind()
			return t, func() uint64 { return 0 }
		}},
		{"memcheck", func() (guest.Tool, func() uint64) {
			t := tools.NewMemcheck()
			return t, t.ShadowBytes
		}},
		{"callgrind", func() (guest.Tool, func() uint64) {
			t := tools.NewCallgrind()
			return t, t.FootprintBytes
		}},
		{"helgrind", func() (guest.Tool, func() uint64) {
			t := tools.NewHelgrind()
			return t, t.FootprintBytes
		}},
		{"aprof-rms", func() (guest.Tool, func() uint64) {
			t := core.New(core.Options{RMSOnly: true})
			return t, t.PeakShadowBytes
		}},
		{"aprof-trms", func() (guest.Tool, func() uint64) {
			t := core.New(core.Options{})
			return t, t.PeakShadowBytes
		}},
	}
}

// measurement holds one (benchmark, tool) data point.
type measurement struct {
	seconds   float64
	toolBytes uint64
	guestB    uint64 // native guest memory, bytes
}

// measure runs the workload under one tool case, repeated, keeping the
// fastest time (standard practice for slowdown tables).
func measure(s workloads.Spec, params workloads.Params, tc toolCase, repeats int) (measurement, error) {
	var best measurement
	for r := 0; r < repeats; r++ {
		tool, footprint := tc.make()
		var tls []guest.Tool
		if tool != nil {
			tls = append(tls, tool)
		}
		start := time.Now()
		m, err := workloads.Run(s, params, tls...)
		elapsed := time.Since(start).Seconds()
		if err != nil {
			return measurement{}, fmt.Errorf("%s under %s: %w", s.Name, tc.name, err)
		}
		_, words := m.MemoryFootprint()
		cur := measurement{seconds: elapsed, toolBytes: footprint(), guestB: uint64(words) * 8}
		if r == 0 || cur.seconds < best.seconds {
			best.seconds = cur.seconds
		}
		if r == 0 {
			best.toolBytes, best.guestB = cur.toolBytes, cur.guestB
		}
	}
	return best, nil
}

// geomean computes the geometric mean of positive values.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
