package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// sanity-checks its output.
func TestAllExperimentsRunQuick(t *testing.T) {
	wantMarkers := map[string][]string{
		"fig1":       {"fig1a", "fig1b", "routine"},
		"fig2":       {"consumer", "trms"},
		"fig3":       {"externalRead"},
		"fig4":       {"mysql_select", "power-law fit", "best model"},
		"fig5":       {"im_generate", "power-law fit"},
		"fig6":       {"buf_flush_buffered_writes", "power-law fit"},
		"fig7":       {"wbuffer_write_thread", "distinct sizes"},
		"fig8":       {"Protocol::send_eof", "workload plot"},
		"fig9":       {"mysqld", "vips", "induced share"},
		"table1":     {"Table 1a", "Table 1b", "aprof-trms", "geometric mean"},
		"fig14":      {"Fig. 14a", "Fig. 14b", "threads"},
		"fig15":      {"richness", "dedup"},
		"fig16":      {"input volume", "mysqld"},
		"fig17":      {"thread-induced", "external"},
		"fig18":      {"thread-induced input"},
		"fig19":      {"external input"},
		"ablations":  {"Ablation 1", "timestamping", "renumber passes", "record+replay"},
		"inline":     {"batched", "per-event", "mysqld", "dedup"},
		"validation": {"structural", "correctness", "determinism", "performance", "pass"},
	}
	if len(IDs()) != len(wantMarkers) {
		t.Fatalf("registered experiments %v, want %d", IDs(), len(wantMarkers))
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(Config{Out: &buf, Quick: true}); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Fatalf("%s: implausibly short output:\n%s", e.ID, out)
			}
			for _, marker := range wantMarkers[e.ID] {
				if !strings.Contains(out, marker) {
					t.Errorf("%s: output lacks %q:\n%s", e.ID, marker, out)
				}
			}
		})
	}
}

func TestGetAndIDs(t *testing.T) {
	if _, err := Get("table1"); err != nil {
		t.Error(err)
	}
	if _, err := Get("nonsense"); err == nil {
		t.Error("Get accepted unknown id")
	}
	ids := IDs()
	if ids[0] != "fig1" || ids[len(ids)-1] != "validation" {
		t.Errorf("presentation order wrong: %v", ids)
	}
}

// TestFig4ShapeHolds verifies the headline reproduction claim numerically:
// in the fig4 output, the trms power-law exponent is near 1 while the rms
// exponent is well above it.
func TestFig4ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	if err := mustGet(t, "fig4").Run(Config{Out: &buf, Quick: true}); err != nil {
		t.Fatal(err)
	}
	exps := extractExponents(t, buf.String())
	if len(exps) != 2 {
		t.Fatalf("expected 2 power-law fits (rms, trms), got %v\n%s", exps, buf.String())
	}
	rmsExp, trmsExp := exps[0], exps[1]
	if trmsExp < 0.7 || trmsExp > 1.4 {
		t.Errorf("trms exponent = %.2f, want ~1 (linear)", trmsExp)
	}
	if rmsExp < trmsExp+0.5 {
		t.Errorf("rms exponent %.2f not clearly above trms exponent %.2f (trend inversion missing)", rmsExp, trmsExp)
	}
}

func mustGet(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// extractExponents pulls the n^k exponents from "power-law fit" lines.
func extractExponents(t *testing.T, out string) []float64 {
	t.Helper()
	var exps []float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "power-law fit") {
			continue
		}
		idx := strings.Index(line, "n^")
		if idx < 0 {
			continue
		}
		rest := line[idx+2:]
		end := strings.IndexAny(rest, " (")
		if end < 0 {
			end = len(rest)
		}
		v, err := strconv.ParseFloat(rest[:end], 64)
		if err != nil {
			t.Fatalf("cannot parse exponent from %q: %v", line, err)
		}
		exps = append(exps, v)
	}
	return exps
}

// TestFig7Monotonicity asserts the figure's defining property numerically:
// the number of distinct input sizes grows monotonically as input sources
// are added (rms-only <= external-only <= external+thread).
func TestFig7Monotonicity(t *testing.T) {
	var buf bytes.Buffer
	if err := mustGet(t, "fig7").Run(Config{Out: &buf, Quick: true}); err != nil {
		t.Fatal(err)
	}
	var counts []int
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		// Rows look like: "(a) rms only  <calls>  <distinct>  <share>".
		if len(fields) >= 4 && strings.HasPrefix(line, "(") {
			var v int
			if _, err := fmt.Sscanf(fields[len(fields)-2], "%d", &v); err == nil {
				counts = append(counts, v)
			}
		}
	}
	if len(counts) != 3 {
		t.Fatalf("parsed %d variant rows from:\n%s", len(counts), buf.String())
	}
	if !(counts[0] <= counts[1] && counts[1] <= counts[2]) {
		t.Errorf("distinct sizes not monotone across input sources: %v", counts)
	}
	if counts[2] <= counts[0] {
		t.Errorf("full trms (%d) not richer than rms-only (%d)", counts[2], counts[0])
	}
}
