package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/guest"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("ablations",
		"Ablations: naive vs timestamping, renumbering, timeslice, record/replay (DESIGN.md)",
		runAblations)
}

// runAblations prints the design-choice comparisons as one table each. The
// same comparisons exist as testing.B benchmarks; this driver gives the
// experiment harness a quick textual form.
func runAblations(cfg Config) error {
	repeats := cfg.repeats()

	timed := func(f func() error) (float64, error) {
		best := 0.0
		for r := 0; r < repeats; r++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			el := time.Since(start).Seconds()
			if r == 0 || el < best {
				best = el
			}
		}
		return best, nil
	}

	runWith := func(name string, params workloads.Params, tool guest.Tool) error {
		_, err := workloads.RunByName(name, params, tool)
		return err
	}

	// 1. Naive (Fig. 10) vs timestamping (Fig. 11).
	params := workloads.Params{Threads: 4, Size: sizeFor(mustSpec("350.md"), cfg)}
	tsTime, err := timed(func() error { return runWith("350.md", params, core.New(core.Options{})) })
	if err != nil {
		return err
	}
	nvTime, err := timed(func() error { return runWith("350.md", params, core.NewNaive(core.Options{})) })
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "Ablation 1 — naive sets (Fig. 10) vs read/write timestamping (Fig. 11), 350.md:")
	report.Table(cfg.Out, []string{"algorithm", "time (ms)"}, [][]string{
		{"timestamping", fmt.Sprintf("%.2f", tsTime*1e3)},
		{"naive", fmt.Sprintf("%.2f", nvTime*1e3)},
	})
	fmt.Fprintln(cfg.Out)

	// 2. Renumbering threshold. mysqld bumps the counter at every call,
	// thread switch and kernel buffer fill: thousands of bumps per run.
	fmt.Fprintln(cfg.Out, "Ablation 2 — renumbering threshold (Fig. 13), mysqld:")
	var renumRows [][]string
	for _, v := range []struct {
		label     string
		threshold uint32
	}{{"never", 0}, {"every 1024", 1024}, {"every 256", 256}} {
		var renumbers uint64
		el, err := timed(func() error {
			p := core.New(core.Options{RenumberThreshold: v.threshold})
			if err := runWith("mysqld", workloads.Params{Size: sizeFor(mustSpec("mysqld"), cfg)}, p); err != nil {
				return err
			}
			renumbers = p.Renumbers()
			return nil
		})
		if err != nil {
			return err
		}
		renumRows = append(renumRows, []string{v.label, fmt.Sprintf("%.2f", el*1e3), fmt.Sprint(renumbers)})
	}
	report.Table(cfg.Out, []string{"threshold", "time (ms)", "renumber passes"}, renumRows)
	fmt.Fprintln(cfg.Out)

	// 3. Scheduler timeslice vs induced-input observation.
	fmt.Fprintln(cfg.Out, "Ablation 3 — fair-scheduler timeslice, dedup:")
	var tsRows [][]string
	for _, slice := range []int{1, 10, 100, 1000} {
		var induced uint64
		el, err := timed(func() error {
			p := core.New(core.Options{})
			if err := runWith("dedup", workloads.Params{Size: sizeFor(mustSpec("dedup"), cfg), Timeslice: slice}, p); err != nil {
				return err
			}
			induced = p.Profile().InducedThread
			return nil
		})
		if err != nil {
			return err
		}
		tsRows = append(tsRows, []string{fmt.Sprint(slice), fmt.Sprintf("%.2f", el*1e3), fmt.Sprint(induced)})
	}
	report.Table(cfg.Out, []string{"timeslice (ops)", "time (ms)", "thread-induced accesses"}, tsRows)
	fmt.Fprintln(cfg.Out)

	// 4. Online vs record+merge+replay.
	vparams := workloads.Params{Size: sizeFor(mustSpec("vips"), cfg)}
	onTime, err := timed(func() error { return runWith("vips", vparams, core.New(core.Options{})) })
	if err != nil {
		return err
	}
	repTime, err := timed(func() error {
		rec := trace.NewRecorder()
		if err := runWith("vips", vparams, rec); err != nil {
			return err
		}
		return trace.Replay(rec.Trace(), 0, core.New(core.Options{}))
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(cfg.Out, "Ablation 4 — online profiling vs record+merge+replay, vips:")
	report.Table(cfg.Out, []string{"mode", "time (ms)"}, [][]string{
		{"online", fmt.Sprintf("%.2f", onTime*1e3)},
		{"record+replay", fmt.Sprintf("%.2f", repTime*1e3)},
	})
	fmt.Fprintln(cfg.Out)
	fmt.Fprintln(cfg.Out, "(profiles are asserted bit-identical across all four ablations by the test suite)")
	return nil
}

func mustSpec(name string) workloads.Spec {
	s, err := workloads.Get(name)
	if err != nil {
		panic(err)
	}
	return s
}
