package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("inline",
		"Inline profiling overhead: batched vs per-event dispatch",
		runInline)
}

// inlineWorkloads are the executions the inline-overhead level times: the
// kernel-I/O-heavy mysqld model, the parsec models the paper profiles, and
// one Table-1 (OMP2012) compute kernel. The compute kernel is where burst
// sampling pays most: with no kernel I/O, skipped windows drop to a pure
// scan, while mysqld's unskippable kernel-write provenance bounds its win.
var inlineWorkloads = []struct {
	name    string
	size    int
	threads int
}{
	{"mysqld", 24, 8},
	{"vips", 16, 4},
	{"dedup", 16, 4},
	{"fluidanimate", 16, 4},
	{"358.botsalgn", 96, 16},
}

// inlineBaselines records the min-of-30 inline profiling wall time of the
// pre-batching profiler (commit 2ee0156, per-event dispatch only), measured
// on the same host and sizes as this experiment. They anchor the
// speedup-vs-baseline column; re-measure them by checking out that commit
// and timing `core.New` under the same workloads.
var inlineBaselines = map[string]float64{
	"mysqld":       10.349,
	"vips":         0.573,
	"dedup":        0.471,
	"fluidanimate": 0.175,
}

// inlineBench is the machine-readable record of the inline-overhead level,
// written to the path in Config.BenchJSON (BENCH_INLINE.json at the repo
// root), mirroring BENCH_PIPELINE.json's min-of-reps methodology.
type inlineBench struct {
	Benchmark  string            `json:"benchmark"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Reps       int               `json:"reps"`
	Workloads  []inlineBenchStep `json:"workloads"`
	Note       string            `json:"note"`
}

type inlineBenchStep struct {
	Workload   string  `json:"workload"`
	Size       int     `json:"size"`
	Threads    int     `json:"threads"`
	Events     int     `json:"events"`
	Native     float64 `json:"native_ms"`
	Sequential float64 `json:"sequential_ms"`
	Batched    float64 `json:"batched_ms"`
	Suppress   float64 `json:"suppress_ms"`
	Burst      float64 `json:"burst_ms"`
	Speedup    float64 `json:"speedup"`
	// BurstSpeedup is batched_ms / burst_ms: what burst sampling buys over
	// the exact batched profiler on the same run.
	BurstSpeedup float64 `json:"burst_speedup"`
	Baseline     float64 `json:"baseline_pre_batching_ms,omitempty"`
	VsBaseline   float64 `json:"speedup_vs_baseline,omitempty"`
	// BurstVsBaseline is baseline_pre_batching_ms / burst_ms: the combined
	// batching + sampling win over the pre-batching profiler.
	BurstVsBaseline float64 `json:"burst_speedup_vs_baseline,omitempty"`
}

// runInline times the inline profiler — attached to a live machine, not
// replaying a trace — under per-event dispatch (Config.Unbatched, the
// sequential reference) and under the batched event ring, min-of-reps to
// suppress scheduling noise. The native row is the same workload with no
// tool attached, giving the instrumentation overhead the batching attacks.
func runInline(cfg Config) error {
	w := cfg.Out
	reps := 30
	if cfg.Quick {
		reps = 3
	}

	minOf := func(f func() error) (time.Duration, error) {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best, nil
	}

	bench := inlineBench{
		Benchmark:  "inline-overhead",
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reps:       reps,
		Note: "min-of-reps wall time of one profiled workload run; sequential " +
			"is per-event dispatch (guest.Config.Unbatched), batched is the " +
			"event-ring fast path, suppress adds the profile-identical " +
			"redundancy filter, burst adds sampled hot routines (bounded " +
			"error); baseline_pre_batching_ms is the pre-batching profiler " +
			"(commit 2ee0156) measured with the same methodology",
	}

	fmt.Fprintf(w, "## Inline profiling overhead — batched vs per-event dispatch vs sampling\n\n")
	fmt.Fprintf(w, "Wall time of one profiled run (min of %d), on %d CPU(s) (GOMAXPROCS %d).\n\n",
		reps, bench.NumCPU, bench.GOMAXPROCS)
	fmt.Fprintf(w, "| workload | events | native (ms) | per-event (ms) | batched (ms) | suppress (ms) | burst (ms) | batched speedup | burst speedup |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n")

	for _, wl := range inlineWorkloads {
		params := workloads.Params{Size: wl.size, Threads: wl.threads}
		if cfg.Quick {
			params.Size = max(wl.size/2, 4)
		}

		rec := trace.NewRecorder()
		if _, err := workloads.RunByName(wl.name, params, rec); err != nil {
			return err
		}
		events := rec.Trace().NumEvents()

		native, err := minOf(func() error {
			_, err := workloads.RunByName(wl.name, params)
			return err
		})
		if err != nil {
			return err
		}
		unbParams := params
		unbParams.Unbatched = true
		seq, err := minOf(func() error {
			_, err := workloads.RunByName(wl.name, unbParams, core.New(core.Options{}))
			return err
		})
		if err != nil {
			return err
		}
		bat, err := minOf(func() error {
			_, err := workloads.RunByName(wl.name, params, core.New(core.Options{}))
			return err
		})
		if err != nil {
			return err
		}
		sup, err := minOf(func() error {
			_, err := workloads.RunByName(wl.name, params, core.New(core.Options{Sampling: core.SamplingSuppress}))
			return err
		})
		if err != nil {
			return err
		}
		bur, err := minOf(func() error {
			_, err := workloads.RunByName(wl.name, params, core.New(core.Options{Sampling: core.SamplingBurst}))
			return err
		})
		if err != nil {
			return err
		}

		step := inlineBenchStep{
			Workload:     wl.name,
			Size:         params.Size,
			Threads:      wl.threads,
			Events:       events,
			Native:       ms(native),
			Sequential:   ms(seq),
			Batched:      ms(bat),
			Suppress:     ms(sup),
			Burst:        ms(bur),
			Speedup:      float64(seq) / float64(bat),
			BurstSpeedup: float64(bat) / float64(bur),
		}
		// The pre-batching baseline was measured at the default sizes
		// only, so it is not comparable under Quick.
		if base, ok := inlineBaselines[wl.name]; ok && !cfg.Quick {
			step.Baseline = base
			step.VsBaseline = base / ms(bat)
			step.BurstVsBaseline = base / ms(bur)
		}
		bench.Workloads = append(bench.Workloads, step)

		fmt.Fprintf(w, "| %s | %d | %.3f | %.3f | %.3f | %.3f | %.3f | %.2fx | %.2fx |\n",
			wl.name, events, ms(native), ms(seq), ms(bat), ms(sup), ms(bur),
			step.Speedup, step.BurstSpeedup)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "The dominant win over the pre-batching profiler is not the dispatch\n")
	fmt.Fprintf(w, "mechanism alone but what batching enables: the profiler's MemBatch loop\n")
	fmt.Fprintf(w, "hoists the thread view, the operation counter and the write-provenance\n")
	fmt.Fprintf(w, "word out of the per-event path, and persistent shadow-chunk cursors plus\n")
	fmt.Fprintf(w, "chunk pooling remove the per-access table walks; per-event dispatch\n")
	fmt.Fprintf(w, "shares most of those gains, which is why the two columns are close.\n")
	fmt.Fprintf(w, "The sampling tiers run on top of batching: suppress skips the shadow\n")
	fmt.Fprintf(w, "update for reads the same activation already timestamped (the profile\n")
	fmt.Fprintf(w, "is byte-identical), and burst additionally skips whole activations of\n")
	fmt.Fprintf(w, "hot routines outside periodic measurement windows, trading bounded\n")
	fmt.Fprintf(w, "metric error for speed (calls and cost stay exact).\n")
	if !cfg.Quick {
		fmt.Fprintf(w, "Against the pre-batching profiler (commit 2ee0156):\n\n")
		fmt.Fprintf(w, "| workload | pre-batching (ms) | batched (ms) | burst (ms) | reduction | burst reduction |\n")
		fmt.Fprintf(w, "|---|---:|---:|---:|---:|---:|\n")
		for _, s := range bench.Workloads {
			if s.Baseline == 0 {
				continue
			}
			fmt.Fprintf(w, "| %s | %.3f | %.3f | %.3f | %.2fx | %.2fx |\n",
				s.Workload, s.Baseline, s.Batched, s.Burst, s.VsBaseline, s.BurstVsBaseline)
		}
		fmt.Fprintln(w)
	}

	if cfg.BenchJSON != "" {
		data, err := json.MarshalIndent(&bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.BenchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		// One extra instrumented run per workload, outside the timing
		// loops, captures the guest/core/shadow metric snapshot that
		// accompanies the raw numbers.
		reg := telemetry.NewRegistry()
		for _, wl := range inlineWorkloads {
			params := workloads.Params{Size: wl.size, Threads: wl.threads, Telemetry: reg}
			if cfg.Quick {
				params.Size = max(wl.size/2, 4)
			}
			if _, err := workloads.RunByName(wl.name, params, core.New(core.Options{Telemetry: reg})); err != nil {
				return err
			}
		}
		if err := writeBenchTelemetry(cfg, reg); err != nil {
			return err
		}
	}
	return nil
}
