package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("fig15", "Fig. 15: routine profile richness of trms w.r.t. rms", runFig15)
	registerExperiment("fig16", "Fig. 16: input volume of trms w.r.t. rms", runFig16)
	registerExperiment("fig17", "Fig. 17: external vs thread-induced input per benchmark", runFig17)
	registerExperiment("fig18", "Fig. 18: thread-induced input on a routine basis", runFig18)
	registerExperiment("fig19", "Fig. 19: external input on a routine basis", runFig19)
}

// representativeBenchmarks mirrors the paper's selection: PARSEC pipeline
// and data-parallel codes, the database server, and OMP2012 picks.
var representativeBenchmarks = []string{
	"dedup", "vips", "fluidanimate", "streamcluster", "bodytrack", "x264", "mysqld",
	"350.md", "352.nab", "358.botsalgn", "367.imagick", "371.applu331",
}

// percentiles sampled from each cumulative curve ("x% of routines have
// value >= y").
var curvePercents = []float64{1, 2, 5, 10, 25, 50, 100}

func curveTable(cfg Config, title, valueName string,
	curveOf func(p *core.Profile) []report.CumulativePoint) error {
	headers := []string{"benchmark"}
	for _, pc := range curvePercents {
		headers = append(headers, fmt.Sprintf("%.0f%%", pc))
	}
	var rows [][]string
	for _, bench := range representativeBenchmarks {
		p, err := profileWorkload(bench, cfg, core.Options{}, workloads.Params{})
		if err != nil {
			return err
		}
		curve := curveOf(p)
		row := []string{bench}
		for _, pc := range curvePercents {
			row = append(row, fmt.Sprintf("%.2f", report.ValueAtPercent(curve, pc)))
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(cfg.Out, title)
	fmt.Fprintf(cfg.Out, "(cell = %s such that x%% of the benchmark's routines have at least that value)\n", valueName)
	report.Table(cfg.Out, headers, rows)
	return nil
}

func runFig15(cfg Config) error {
	return curveTable(cfg,
		"Fig. 15 — profile richness (|trms|-|rms|)/|rms| cumulative curves",
		"richness", report.RichnessCurve)
}

func runFig16(cfg Config) error {
	return curveTable(cfg,
		"Fig. 16 — input volume 1 - sum(rms)/sum(trms) cumulative curves",
		"input volume", report.VolumeCurve)
}

func runFig17(cfg Config) error {
	type row struct {
		bench               string
		threadPct, extPct   float64
		induced, totalReads uint64
	}
	var rows []row
	for _, bench := range append(workloadSuiteNames("omp2012"),
		"dedup", "vips", "fluidanimate", "streamcluster", "bodytrack", "x264", "mysqld") {
		p, err := profileWorkload(bench, cfg, core.Options{}, workloads.Params{})
		if err != nil {
			return err
		}
		tp, ep := report.InducedSplit(p)
		rows = append(rows, row{bench, tp, ep, p.InducedThread + p.InducedExternal, 0})
	}
	// Paper ordering: decreasing thread-induced percentage.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].threadPct > rows[i].threadPct {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{r.bench,
			fmt.Sprintf("%.1f%%", r.threadPct),
			fmt.Sprintf("%.1f%%", r.extPct),
			fmt.Sprint(r.induced)})
	}
	fmt.Fprintln(cfg.Out, "Fig. 17 — induced first-accesses split between thread-induced and external input")
	fmt.Fprintln(cfg.Out, "(each induced access counted once; benchmarks sorted by decreasing thread share;")
	fmt.Fprintln(cfg.Out, " paper: the OMP2012 suite clusters at the thread-dominated end)")
	report.Table(cfg.Out, []string{"benchmark", "thread-induced", "external", "induced accesses"}, table)
	return nil
}

func workloadSuiteNames(suite string) []string {
	var names []string
	for _, s := range workloads.Suite(suite) {
		names = append(names, s.Name)
	}
	return names
}

func runFig18(cfg Config) error {
	return curveTable(cfg,
		"Fig. 18 — per-routine thread-induced input (% of each routine's induced accesses)",
		"thread-induced %", report.ThreadInducedCurve)
}

func runFig19(cfg Config) error {
	return curveTable(cfg,
		"Fig. 19 — per-routine external input (% of each routine's induced accesses)",
		"external %", report.ExternalCurve)
}
