package experiments

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/workloads"
)

func init() {
	registerExperiment("table1",
		"Table 1: time and space overhead of the tools on the SPEC OMP2012-style suite (4 threads)",
		runTable1)
	registerExperiment("fig14",
		"Fig. 14: time and space overhead relative to nulgrind as a function of the thread count",
		runFig14)
}

// runTable1 reproduces the paper's Table 1: every OMP2012-style benchmark
// runs natively and under each tool; the table reports per-tool slowdown
// (time relative to native) and space overhead (native guest memory plus
// tool state, relative to native guest memory).
func runTable1(cfg Config) error {
	cases := toolCases()
	suite := workloads.Suite("omp2012")
	repeats := cfg.repeats()

	headers := []string{"benchmark", "native(ms)"}
	for _, tc := range cases[1:] {
		headers = append(headers, tc.name)
	}

	var timeRows, spaceRows [][]string
	slowdowns := make([][]float64, len(cases))
	overheads := make([][]float64, len(cases))

	for _, s := range suite {
		params := workloads.Params{Threads: 4, Size: overheadSizeFor(s, cfg)}
		native, err := measure(s, params, cases[0], repeats)
		if err != nil {
			return err
		}
		trow := []string{s.Name, fmt.Sprintf("%.2f", native.seconds*1e3)}
		srow := []string{s.Name, fmt.Sprintf("%.1f KB", float64(native.guestB)/1024)}
		for ti, tc := range cases[1:] {
			mnt, err := measure(s, params, tc, repeats)
			if err != nil {
				return err
			}
			slow := mnt.seconds / native.seconds
			over := float64(native.guestB+mnt.toolBytes) / float64(native.guestB)
			trow = append(trow, fmt.Sprintf("%.1f", slow))
			srow = append(srow, fmt.Sprintf("%.1f", over))
			slowdowns[ti+1] = append(slowdowns[ti+1], slow)
			overheads[ti+1] = append(overheads[ti+1], over)
		}
		timeRows = append(timeRows, trow)
		spaceRows = append(spaceRows, srow)
	}

	gmeanT := []string{"geometric mean", ""}
	gmeanS := []string{"geometric mean", ""}
	for ti := range cases[1:] {
		gmeanT = append(gmeanT, fmt.Sprintf("%.1f", geomean(slowdowns[ti+1])))
		gmeanS = append(gmeanS, fmt.Sprintf("%.1f", geomean(overheads[ti+1])))
	}
	timeRows = append(timeRows, gmeanT)
	spaceRows = append(spaceRows, gmeanS)

	fmt.Fprintln(cfg.Out, "Table 1a — slowdown relative to native guest execution (4 threads)")
	report.Table(cfg.Out, headers, timeRows)
	fmt.Fprintln(cfg.Out)
	fmt.Fprintln(cfg.Out, "Table 1b — space overhead relative to native guest memory (4 threads)")
	spaceHeaders := append([]string{"benchmark", "native"}, headers[2:]...)
	report.Table(cfg.Out, spaceHeaders, spaceRows)
	return nil
}

// runFig14 sweeps the thread count and reports each tool's average slowdown
// and space overhead relative to nulgrind, as in the paper's Figure 14.
func runFig14(cfg Config) error {
	benchNames := []string{"350.md", "360.ilbdc", "372.smithwa"}
	threadCounts := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		threadCounts = []int{1, 2, 4}
	}
	cases := toolCases()[1:] // relative to nulgrind; skip native
	repeats := cfg.repeats()

	headers := []string{"threads"}
	for _, tc := range cases[1:] {
		headers = append(headers, tc.name)
	}
	var timeRows, spaceRows [][]string

	for _, nt := range threadCounts {
		slow := make(map[string][]float64)
		over := make(map[string][]float64)
		for _, name := range benchNames {
			s, err := workloads.Get(name)
			if err != nil {
				return err
			}
			params := workloads.Params{Threads: nt, Size: overheadSizeFor(s, cfg)}
			base, err := measure(s, params, cases[0], repeats) // nulgrind
			if err != nil {
				return err
			}
			baseSpace := float64(base.guestB)
			for _, tc := range cases[1:] {
				mnt, err := measure(s, params, tc, repeats)
				if err != nil {
					return err
				}
				slow[tc.name] = append(slow[tc.name], mnt.seconds/base.seconds)
				over[tc.name] = append(over[tc.name], float64(base.guestB+mnt.toolBytes)/baseSpace)
			}
		}
		trow := []string{fmt.Sprint(nt)}
		srow := []string{fmt.Sprint(nt)}
		for _, tc := range cases[1:] {
			trow = append(trow, fmt.Sprintf("%.1f", geomean(slow[tc.name])))
			srow = append(srow, fmt.Sprintf("%.1f", geomean(over[tc.name])))
		}
		timeRows = append(timeRows, trow)
		spaceRows = append(spaceRows, srow)
	}

	fmt.Fprintln(cfg.Out, "Fig. 14a — mean slowdown relative to nulgrind vs. thread count")
	report.Table(cfg.Out, headers, timeRows)
	fmt.Fprintln(cfg.Out)
	fmt.Fprintln(cfg.Out, "Fig. 14b — mean space overhead relative to nulgrind-era guest memory vs. thread count")
	report.Table(cfg.Out, headers, spaceRows)
	return nil
}
