// Documentation and formatting lints for the packages whose exported
// surface other code programs against. TestExportedSymbolsDocumented
// enforces that every exported symbol in the trace, pipeline, and core
// packages carries a doc comment — the trace wire format and the profile
// model are contracts (docs/TRACE_FORMAT.md, docs/VALIDATION.md), and an
// undocumented export there is an API bug. TestGofmt enforces canonical
// formatting on the same trees. scripts/verify.sh runs both via
// `go test ./...` and re-checks formatting repo-wide.
package repro_test

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintDirs are the directories whose exported symbols must be documented.
var lintDirs = []string{
	"internal/trace",
	"internal/trace/pipeline",
	"internal/core",
	"internal/faultinject",
	"internal/telemetry",
	"internal/profflag",
	"internal/invariant",
}

func lintSources(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		t.Fatalf("no non-test Go sources under %s", dir)
	}
	return files
}

func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range lintDirs {
		for _, path := range lintSources(t, dir) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, decl := range f.Decls {
				checkDeclDocumented(t, fset, decl)
			}
		}
	}
}

func checkDeclDocumented(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	missing := func(pos token.Pos, what, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			missing(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the const/var group covers
					// every name it declares.
					if n.IsExported() && d.Doc == nil && s.Doc == nil {
						missing(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func TestGofmt(t *testing.T) {
	for _, dir := range lintDirs {
		for _, path := range lintSources(t, dir) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading %s: %v", path, err)
			}
			formatted, err := format.Source(src)
			if err != nil {
				t.Fatalf("formatting %s: %v", path, err)
			}
			if string(src) != string(formatted) {
				t.Errorf("%s: not gofmt-formatted (run gofmt -w %s)", path, path)
			}
		}
	}
}
