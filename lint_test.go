// Documentation and formatting lints. TestExportedSymbolsDocumented
// enforces that every exported symbol in the trace, pipeline, and core
// packages carries a doc comment — the trace wire format and the profile
// model are contracts (docs/TRACE_FORMAT.md, docs/VALIDATION.md), and an
// undocumented export there is an API bug. TestGofmt enforces canonical
// formatting on the same trees. TestRequiredDocs keeps the documentation
// set itself from rotting: the required documents must exist, be indexed
// in docs/README.md, and every relative markdown link in the repo must
// resolve. scripts/verify.sh runs all of these via `go test ./...` and
// re-checks formatting repo-wide.
package repro_test

import (
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// lintDirs are the directories whose exported symbols must be documented.
var lintDirs = []string{
	"internal/trace",
	"internal/trace/pipeline",
	"internal/core",
	"internal/faultinject",
	"internal/telemetry",
	"internal/profflag",
	"internal/obs",
	"internal/daemon",
	"internal/invariant",
	"internal/fit",
	"internal/report",
}

// requiredDocs are the documents the repo promises to keep: each must
// exist, be non-trivial, and be linked from the docs/README.md index.
var requiredDocs = []string{
	"docs/ALGORITHM.md",
	"docs/ARCHITECTURE.md",
	"docs/CORRECTNESS.md",
	"docs/ISPL.md",
	"docs/OBSERVABILITY.md",
	"docs/PERFORMANCE.md",
	"docs/TRACE_FORMAT.md",
	"docs/VALIDATION.md",
}

func TestRequiredDocs(t *testing.T) {
	index, err := os.ReadFile("docs/README.md")
	if err != nil {
		t.Fatalf("docs index missing: %v", err)
	}
	for _, doc := range requiredDocs {
		info, err := os.Stat(doc)
		if err != nil {
			t.Errorf("required document %s: %v", doc, err)
			continue
		}
		if info.Size() < 512 {
			t.Errorf("required document %s is a stub (%d bytes)", doc, info.Size())
		}
		if base := filepath.Base(doc); !strings.Contains(string(index), "("+base+")") {
			t.Errorf("docs/README.md does not index %s", doc)
		}
	}
	// The root README must route newcomers to the architecture tour.
	root, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(root), "docs/ARCHITECTURE.md") {
		t.Error("README.md does not link docs/ARCHITECTURE.md")
	}
}

// mdLink matches inline markdown links and captures the target.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocLinksResolve sweeps every markdown file at the repo root and
// under docs/ for relative links to files and verifies each target
// exists, so cross-references cannot silently rot as the tree moves.
func TestDocLinksResolve(t *testing.T) {
	var files []string
	for _, pat := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, m...)
	}
	if len(files) < len(requiredDocs) {
		t.Fatalf("markdown sweep found only %d files", len(files))
	}
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(src), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue // intra-document anchor
			}
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dead link %q (%s does not exist)", file, m[1], resolved)
			}
		}
	}
}

func lintSources(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		t.Fatalf("no non-test Go sources under %s", dir)
	}
	return files
}

func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range lintDirs {
		for _, path := range lintSources(t, dir) {
			fset := token.NewFileSet()
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, decl := range f.Decls {
				checkDeclDocumented(t, fset, decl)
			}
		}
	}
}

func checkDeclDocumented(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	missing := func(pos token.Pos, what, name string) {
		t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), what, name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !receiverExported(d) {
			return
		}
		if d.Doc == nil {
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			missing(d.Pos(), kind, d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
					missing(s.Pos(), "type", s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					// A doc comment on the const/var group covers
					// every name it declares.
					if n.IsExported() && d.Doc == nil && s.Doc == nil {
						missing(n.Pos(), "value", n.Name)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not part of the package API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func TestGofmt(t *testing.T) {
	for _, dir := range lintDirs {
		for _, path := range lintSources(t, dir) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading %s: %v", path, err)
			}
			formatted, err := format.Source(src)
			if err != nil {
				t.Fatalf("formatting %s: %v", path, err)
			}
			if string(src) != string(formatted) {
				t.Errorf("%s: not gofmt-formatted (run gofmt -w %s)", path, path)
			}
		}
	}
}
