#!/bin/sh
# Tier-1 verification gate: build, tests (including the doc-comment and
# gofmt lints in lint_test.go), vet, and a formatting check. Run from the
# repository root. Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "verify: all checks passed"
