#!/bin/sh
# Tier-1 verification gate: build, tests (including the doc-comment and
# gofmt lints in lint_test.go), vet, and a formatting check. Run from the
# repository root. Fails fast on the first broken step.
#
# Optional flags:
#   -race   additionally run the full test suite under the race detector
#   -fuzz   additionally run a 30-second fuzz smoke of the trace decoder
#           and recovery paths
set -eu

cd "$(dirname "$0")/.."

run_race=0
run_fuzz=0
for arg in "$@"; do
	case "$arg" in
	-race) run_race=1 ;;
	-fuzz) run_fuzz=1 ;;
	*)
		echo "usage: scripts/verify.sh [-race] [-fuzz]" >&2
		exit 2
		;;
	esac
done

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

if [ "$run_race" = 1 ]; then
	echo "== go test -race ./..."
	go test -race ./...
fi

if [ "$run_fuzz" = 1 ]; then
	echo "== fuzz smoke: FuzzDecode (30s)"
	go test -fuzz=FuzzDecode -fuzztime=30s ./internal/trace
	echo "== fuzz smoke: FuzzRecover (30s)"
	go test -fuzz=FuzzRecover -fuzztime=30s ./internal/trace
fi

echo "verify: all checks passed"
