#!/bin/sh
# Tier-1 verification gate: build, tests (including the doc-comment and
# gofmt lints in lint_test.go), vet, and a formatting check. Run from the
# repository root. Fails fast on the first broken step.
#
# Optional flags:
#   -race   additionally run the full test suite under the race detector
#   -fuzz   additionally run a 30-second fuzz smoke of the trace decoder
#           and recovery paths
set -eu

cd "$(dirname "$0")/.."

run_race=0
run_fuzz=0
for arg in "$@"; do
	case "$arg" in
	-race) run_race=1 ;;
	-fuzz) run_fuzz=1 ;;
	*)
		echo "usage: scripts/verify.sh [-race] [-fuzz]" >&2
		exit 2
		;;
	esac
done

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go vet ./..."
go vet ./...

echo "== gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== telemetry smoke: aprof-trace analyze -workload -telemetry"
snap="${TELEMETRY_SNAPSHOT:-/tmp/aprof_telemetry_smoke.json}"
go run ./cmd/aprof-trace analyze -workload mysqld -progress=false \
	-telemetry="$snap" -top 3 >/dev/null
# The one-shot run records, encodes, decodes and pipeline-analyzes the
# workload, so a valid snapshot must carry nonzero counters from every
# layer: guest, core, shadow, trace and pipeline.
for key in guest/mem_events core/events_consumed shadow/chunks_allocated \
	trace/events_written pipeline/events_processed; do
	if ! grep -E "\"$key\": [1-9]" "$snap" >/dev/null; then
		echo "telemetry smoke: $key missing or zero in $snap" >&2
		exit 1
	fi
done
echo "telemetry snapshot OK: $snap"

echo "== sampling smoke: suppress byte-identity and burst cross-check"
# The analyze path runs the inline profiler and the offline pipeline side
# by side and insists they agree, so these two runs double as end-to-end
# sampling gates: under -sampling=suppress the pipeline also runs the
# redundancy filter and the strict comparison proves byte-identity with
# the exact route; under -sampling=burst the exact pipeline profile is
# cross-checked against the sampled inline one (calls and cost must match
# exactly, sampled-out counts must be consistent).
go run ./cmd/aprof-trace analyze -workload mysqld -sampling=suppress \
	-progress=false -top 3 >/dev/null
go run ./cmd/aprof-trace analyze -workload mysqld -sampling=burst \
	-progress=false -top 3 >/dev/null
echo "sampling smoke OK"

echo "== scaling smoke: pipeline speedup at GOMAXPROCS=2"
# Parallelism canary: 2 workers on 2 CPUs must beat 1 worker by > 1.2x
# on an annotated mid-size trace (self-skips on single-CPU hosts, where
# wall-clock parallel speedup is impossible — the log says so).
smoke_log="${TMPDIR:-/tmp}/aprof_scaling_smoke.log"
if ! APROF_SCALING_SMOKE=1 go test -run TestScalingSmoke -v \
	./internal/trace/pipeline >"$smoke_log" 2>&1; then
	cat "$smoke_log" >&2
	exit 1
fi
grep -E "SKIP:|skipping|speedup" "$smoke_log" || true

echo "== checkpoint smoke: kill -9 mid-analysis, resume, byte-compare"
# Crash-recovery gate: a subprocess analyzes a mysqld trace with
# checkpointing, the parent SIGKILLs it mid-run, and resuming from the
# surviving checkpoint must produce a profile byte-identical to an
# uninterrupted analysis.
ckpt_log="${TMPDIR:-/tmp}/aprof_ckpt_smoke.log"
if ! APROF_CKPT_SMOKE=1 go test -run TestCheckpointKillSmoke -v \
	./internal/trace/pipeline >"$ckpt_log" 2>&1; then
	cat "$ckpt_log" >&2
	exit 1
fi
grep -E "killed child|byte-identical" "$ckpt_log" || true

echo "== pause smoke: live-snapshot stop-the-world budget (10 ms)"
# Low-pause gate: taking a shadow snapshot under concurrent mutation must
# stop the mutator for at most APROF_PAUSE_BUDGET_MS (self-skips on
# single-CPU hosts, where the concurrent precopy cannot run — the log
# says so).
pause_log="${TMPDIR:-/tmp}/aprof_pause_smoke.log"
if ! APROF_PAUSE_SMOKE=1 APROF_PAUSE_BUDGET_MS=10 go test \
	-run TestSnapshotPauseBudget -v ./internal/shadow >"$pause_log" 2>&1; then
	cat "$pause_log" >&2
	exit 1
fi
grep -E "SKIP:|skipping|pause" "$pause_log" || true

echo "== obs smoke: -http live scrape, byte-identical to unobserved run"
# HTTP observability gate: a subprocess runs analyze -workload with
# -http 127.0.0.1:0; the parent scrapes /metrics, /progress, /profile and
# /spans.json from the live process (the profile mid-analysis, forcing an
# on-demand snapshot capture) and requires the run's stdout to be
# byte-identical to a run without -http.
obs_log="${TMPDIR:-/tmp}/aprof_obs_smoke.log"
if ! APROF_OBS_SMOKE=1 go test -run TestObsSmoke -v \
	./internal/obs >"$obs_log" 2>&1; then
	cat "$obs_log" >&2
	exit 1
fi
grep -E "scraping|PASS" "$obs_log" || true

echo "== daemon smoke: aprofd two-guest stream, byte-identical to one-shot analyze"
# Continuous-profiling gate: a real aprofd process ingests one recorded
# mysqld execution as two concurrent guest connections; the rolling
# profile scraped from /profile?tenant= must be byte-identical to a
# one-shot `aprof-trace analyze -export` of the combined trace.
daemon_log="${TMPDIR:-/tmp}/aprof_daemon_smoke.log"
if ! APROF_DAEMON_SMOKE=1 go test -run TestDaemonSmoke -v \
	./internal/daemon >"$daemon_log" 2>&1; then
	cat "$daemon_log" >&2
	exit 1
fi
grep -E "byte-identical|PASS" "$daemon_log" || true

echo "== invariant check: aprof-trace check -suite micro"
# Full metamorphic matrix over the micro workloads: deep invariant
# checking plus profile byte-identity under perturbed don't-care
# parameters, with a small RenumberThreshold forcing many Fig. 13
# renumbering passes.
go run ./cmd/aprof-trace check -suite micro -level deep -renumber 48

if [ "$run_race" = 1 ]; then
	echo "== go test -race ./..."
	go test -race ./...
fi

if [ "$run_fuzz" = 1 ]; then
	echo "== fuzz smoke: FuzzDecode (30s)"
	go test -fuzz=FuzzDecode -fuzztime=30s ./internal/trace
	echo "== fuzz smoke: FuzzRecover (30s)"
	go test -fuzz=FuzzRecover -fuzztime=30s ./internal/trace
fi

echo "verify: all checks passed"
