// Quickstart: profile a hand-written guest program and discover the
// asymptotic behaviour of its routines from a single run.
//
// The program sorts arrays of several sizes with insertion sort and looks
// values up with binary search. The profiler observes every memory access,
// computes each activation's input size automatically, and the fitting step
// recovers the quadratic sort and the cheap logarithmic searches without the
// program declaring its input sizes anywhere.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/aprof"
)

func main() {
	prof := aprof.NewProfiler(aprof.Options{})
	m := aprof.NewMachine(aprof.Config{Tools: []aprof.Tool{prof}})

	const maxN = 96
	work := m.Static(maxN)

	err := m.Run(func(th *aprof.Thread) {
		for n := 4; n <= maxN; n += 6 {
			// Fill the array in reverse order (worst case for the sort).
			th.Fn("fill", func() {
				for i := 0; i < n; i++ {
					th.Store(work+aprof.Addr(i), uint64(n-i))
				}
			})
			th.Fn("insertion_sort", func() {
				for i := 1; i < n; i++ {
					key := th.Load(work + aprof.Addr(i))
					j := i - 1
					for j >= 0 {
						v := th.Load(work + aprof.Addr(j))
						if v <= key {
							break
						}
						th.Store(work+aprof.Addr(j+1), v)
						j--
					}
					th.Store(work+aprof.Addr(j+1), key)
				}
			})
			th.Fn("binary_search", func() {
				target := uint64(0) // absent key: forces the full descent
				lo, hi := 0, n-1
				for lo <= hi {
					mid := (lo + hi) / 2
					v := th.Load(work + aprof.Addr(mid))
					switch {
					case v == target:
						lo = hi + 1
					case v < target:
						lo = mid + 1
					default:
						hi = mid - 1
					}
				}
			})
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	p := prof.Profile()
	for _, routine := range []string{"insertion_sort", "binary_search"} {
		rp := p.Routine(routine)
		pts := aprof.WorstCasePlot(rp.Merged().ByTRMS)
		best, err := aprof.BestFit(pts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %3d activations, %2d distinct input sizes, worst-case cost grows as %s\n",
			routine, rp.Merged().Calls, len(pts), best.Model.Name)
	}
	fmt.Println()
	fmt.Println("insertion_sort reads each array cell it sorts: its input size is ~n and its")
	fmt.Println("cost fits the quadratic model; binary_search touches only ~log n cells, so")
	fmt.Println("its input sizes stay tiny and its cost is linear in the cells it actually read.")
}
