// External input (the paper's Figure 3): a routine that streams data from a
// device through a small reused buffer.
//
// The operating system fills the two-cell buffer on every iteration, but the
// routine only processes the first cell. Under rms the routine's input size
// is 1 forever — the buffer cells are the same memory every time. Under trms
// every read of a kernel-refilled cell is an induced first-access, so the
// input size is exactly the number of values actually consumed (n), and the
// profiler attributes all of it to external input.
//
// Run with: go run ./examples/externalread
package main

import (
	"fmt"
	"log"
	"os"

	"repro/aprof"
	"repro/internal/report"
)

func main() {
	var rows [][]string
	for _, n := range []int{8, 32, 128, 512} {
		prof := aprof.NewProfiler(aprof.Options{})
		m := aprof.NewMachine(aprof.Config{Tools: []aprof.Tool{prof}})
		buf := m.Static(2)
		disk := m.NewDevice("disk", nil)

		err := m.Run(func(th *aprof.Thread) {
			th.Fn("externalRead", func() {
				for i := 0; i < n; i++ {
					th.ReadDevice(disk, buf, 2) // kernel fills both cells
					th.Load(buf)                // only b[0] is processed
				}
			})
		})
		if err != nil {
			log.Fatal(err)
		}

		a := prof.Profile().Routine("externalRead").Merged()
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(a.SumRMS),
			fmt.Sprint(a.SumTRMS),
			fmt.Sprint(a.InducedExternal),
			fmt.Sprint(disk.Consumed()),
		})
	}
	report.Table(os.Stdout,
		[]string{"iterations", "rms", "trms", "external input", "words read from device"}, rows)
	fmt.Println()
	fmt.Println("The device supplied 2n words but only n were consumed: trms counts exactly")
	fmt.Println("the consumed ones. A metric that charged the whole buffer fill would")
	fmt.Println("overestimate the input by 2x; rms underestimates it by a factor of n.")
}
