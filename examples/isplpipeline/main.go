// ISPL pipeline: profile a program written in the Input-Sensitive Profiling
// Language — a complete compile-to-bytecode pipeline running on the guest
// machine — rather than a hand-written Go guest program.
//
// The program is a two-stage pipeline: a reader thread streams records from
// the input device into a shared one-slot buffer; the main thread consumes
// them and computes a running digest. The profiler attributes the consumer's
// input to thread handoffs, and the reader's to the external device, without
// the ISPL program declaring anything.
//
// Run with: go run ./examples/isplpipeline
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/aprof"
	"repro/internal/ispl"
	"repro/internal/report"
)

const program = `
// Two-stage pipeline over a one-slot buffer.
var raw[1];
var slotBuf[1];
var digest;
sem full = 0;
sem empty = 1;

func reader(n) {
    var i = 0;
    while (i < n) {
        read(raw, 0, 1);          // one record from the input device
        var rec = raw[0] % 1000;  // decode it (the reader's own input)
        p(empty);
        slotBuf[0] = rec;         // hand the decoded record to the consumer
        v(full);
        i = i + 1;
    }
}

func consume() {
    digest = digest * 31 + slotBuf[0];
}

func main() {
    var n = 96;
    var t = spawn reader(n);
    var i = 0;
    while (i < n) {
        p(full);
        consume();
        v(empty);
        i = i + 1;
    }
    join t;
    print(digest);
}
`

func main() {
	prog, err := ispl.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	prof := aprof.NewProfiler(aprof.Options{})
	out, m, err := prog.Run(aprof.Config{Timeslice: 4}, prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program printed %v after %d basic blocks on %d threads\n\n",
		out.Values, m.BBTotal(), m.NumThreads())

	p := prof.Profile()
	var rows [][]string
	names := p.RoutineNames()
	sort.Strings(names)
	for _, name := range names {
		a := p.Routines[name].Merged()
		rows = append(rows, []string{name, fmt.Sprint(a.Calls),
			fmt.Sprint(a.SumTRMS), fmt.Sprint(a.SumRMS),
			fmt.Sprint(a.InducedThread), fmt.Sprint(a.InducedExternal)})
	}
	report.Table(os.Stdout,
		[]string{"routine", "calls", "trms", "rms", "thread-induced", "external"}, rows)

	fmt.Println()
	fmt.Println("The reader's input is external (device records land in its reused decode")
	fmt.Println("cell); the consumer's slot reads are thread-induced (the reader wrote the")
	fmt.Println("decoded record). main's rms stays at a handful of cells while its trms")
	fmt.Println("counts every record that actually flowed through the pipeline.")
}
