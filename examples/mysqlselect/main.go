// MySQL case study (the paper's Figure 4 and Section 3): how a wrong input
// metric manufactures a fake asymptotic bottleneck.
//
// The built-in mysqld workload runs concurrent clients whose SELECT queries
// scan tables of geometrically increasing size through a 4-frame buffer
// pool. The rms of a scan is bounded by the pool footprint — the frames are
// the same memory cells for every page — so plotting cost against rms makes
// mysql_select look superlinear or worse. Against trms, which counts every
// kernel-refilled frame read, the scan is linear: its true behaviour.
//
// Run with: go run ./examples/mysqlselect
package main

import (
	"fmt"
	"log"
	"os"

	"repro/aprof"
	"repro/internal/report"
)

func main() {
	prof := aprof.NewProfiler(aprof.Options{})
	if _, err := aprof.RunWorkload("mysqld",
		aprof.WorkloadParams{Threads: 8, Size: 12}, prof); err != nil {
		log.Fatal(err)
	}
	p := prof.Profile()

	sel := p.Routine("mysql_select")
	if sel == nil {
		log.Fatal("mysql_select not profiled")
	}
	merged := sel.Merged()

	for _, metric := range []struct {
		name string
		hist map[uint64]*aprof.Point
	}{{"rms", merged.ByRMS}, {"trms", merged.ByTRMS}} {
		pts := aprof.WorstCasePlot(metric.hist)
		report.Scatter(os.Stdout,
			fmt.Sprintf("mysql_select — worst-case cost vs %s (%d distinct input sizes)", metric.name, len(pts)),
			pts, 70, 14)
		if pl, err := aprof.FitPowerLaw(pts); err == nil {
			fmt.Printf("power-law fit: cost ~ %s\n", pl)
		}
		fmt.Println()
	}

	tp, ep := aprof.InducedSplit(p)
	fmt.Printf("whole-server induced input: %.1f%% thread-induced, %.1f%% external\n", tp, ep)
	fmt.Println()
	fmt.Println("The rms exponent is inflated by pool-frame reuse; the trms exponent ~1 is the")
	fmt.Println("true linear scan. The same inversion appears in the paper's Figure 4.")
}
