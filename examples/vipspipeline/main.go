// vips case study (the paper's Figures 5 and 7): profile richness and input
// characterization of a threaded image pipeline.
//
// The built-in vips workload runs a prefetch thread filling a recycled line
// cache from the input file, im_generate workers consuming regions of
// varying height, and a write-behind thread (wbuffer_write_thread) flushing
// finished regions in growing batches. The example shows:
//
//   - Figure 5: im_generate's cost is linear in trms but looks explosive
//     against rms (the line cache bounds rms);
//   - Figure 7: wbuffer_write_thread's activations collapse onto a couple of
//     rms values, while trms separates them — and nearly all of its input is
//     induced, split between thread handoffs and file-header reads.
//
// Run with: go run ./examples/vipspipeline
package main

import (
	"fmt"
	"log"
	"os"

	"repro/aprof"
	"repro/internal/report"
)

func main() {
	prof := aprof.NewProfiler(aprof.Options{})
	if _, err := aprof.RunWorkload("vips",
		aprof.WorkloadParams{Threads: 4, Size: 12}, prof); err != nil {
		log.Fatal(err)
	}
	p := prof.Profile()

	// Figure 5: im_generate under both metrics.
	img := p.Routine("im_generate").Merged()
	for _, metric := range []struct {
		name string
		hist map[uint64]*aprof.Point
	}{{"rms", img.ByRMS}, {"trms", img.ByTRMS}} {
		pts := aprof.WorstCasePlot(metric.hist)
		report.Scatter(os.Stdout,
			fmt.Sprintf("im_generate — worst-case cost vs %s (%d points)", metric.name, len(pts)),
			pts, 70, 12)
		if pl, err := aprof.FitPowerLaw(pts); err == nil {
			fmt.Printf("power-law fit: cost ~ %s\n", pl)
		}
		fmt.Println()
	}

	// Figure 7: wbuffer_write_thread profile richness and input sources.
	wb := p.Routine("wbuffer_write_thread")
	a := wb.Merged()
	induced := a.InducedThread + a.InducedExternal
	fmt.Printf("wbuffer_write_thread: %d calls, %d distinct rms values, %d distinct trms values\n",
		a.Calls, wb.DistinctRMS(), wb.DistinctTRMS())
	fmt.Printf("  input: %d cells total, %.1f%% induced (%d thread-handoff, %d external header reads)\n",
		a.SumTRMS, 100*float64(induced)/float64(a.SumTRMS), a.InducedThread, a.InducedExternal)
	fmt.Println()
	fmt.Println("Per-routine induced-input characterization (the paper's Fig. 9b):")
	var rows [][]string
	for _, s := range report.PerRoutineInduced(p) {
		rows = append(rows, []string{s.Name,
			fmt.Sprintf("%.1f%%", s.InducedPct),
			fmt.Sprintf("%.1f%%", s.ThreadPct),
			fmt.Sprintf("%.1f%%", s.ExternalPct)})
	}
	report.Table(os.Stdout, []string{"routine", "induced share", "thread part", "external part"}, rows)
}
