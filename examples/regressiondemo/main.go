// Regression detection demo: the workflow input-sensitive profiling was
// built for. Two "versions" of the same program are profiled on DIFFERENT
// workload sizes, and the comparison still gives the right verdicts, because
// profiles are compared by cost function (fitted growth exponent, cost per
// input cell) rather than by totals:
//
//   - v2 replaces a linear duplicate-check with a quadratic one — flagged as
//     an ASYMPTOTIC REGRESSION by its exponent jump, a judgment that holds
//     even though the two versions ran on different workload sizes;
//   - an untouched routine diffs clean across the size change, despite its
//     raw totals shrinking 4x.
//
// Run with: go run ./examples/regressiondemo
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"repro/aprof"
	"repro/internal/report"
)

// version profiles one implementation: checkBatch validates each batch for
// duplicates (linear with a set in v1, quadratic pairwise in v2); checksum
// is identical in both versions.
func version(quadratic bool, maxBatch int) (*aprof.Profile, error) {
	prof := aprof.NewProfiler(aprof.Options{})
	m := aprof.NewMachine(aprof.Config{Tools: []aprof.Tool{prof}})
	const capacity = 512
	batch := m.Static(capacity)
	seen := m.Static(4 * capacity)
	disk := m.NewDevice("disk", nil)

	err := m.Run(func(th *aprof.Thread) {
		for n := 8; n <= maxBatch; n *= 2 {
			th.ReadDevice(disk, batch, n)
			th.Fn("checkBatch", func() {
				if quadratic {
					// v2: pairwise comparison, O(n^2).
					for i := 0; i < n; i++ {
						vi := th.Load(batch + aprof.Addr(i))
						for j := 0; j < i; j++ {
							if th.Load(batch+aprof.Addr(j)) == vi {
								th.Store(seen, 1)
							}
						}
					}
				} else {
					// v1: hash-set membership, O(n).
					for i := 0; i < n; i++ {
						v := th.Load(batch + aprof.Addr(i))
						slot := aprof.Addr(v % (4 * capacity))
						if th.Load(seen+slot) == v {
							th.Store(seen, 1)
						}
						th.Store(seen+slot, v)
					}
				}
			})
			th.Fn("checksum", func() {
				sum := uint64(0)
				for i := 0; i < n; i++ {
					sum += th.Load(batch + aprof.Addr(i))
				}
				th.Store(seen+1, sum)
			})
		}
	})
	if err != nil {
		return nil, err
	}
	return prof.Profile(), nil
}

func main() {
	// Note the workload sizes differ: v1 was profiled on batches up to 512,
	// v2 only up to 128 — totals are incomparable, cost functions are not.
	v1, err := version(false, 512)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := version(true, 128)
	if err != nil {
		log.Fatal(err)
	}

	deltas := report.CompareProfiles(v1, v2, report.CompareOptions{})
	var rows [][]string
	for _, d := range deltas {
		rows = append(rows, []string{
			d.Name, d.Verdict.String(),
			expo(d.OldExponent) + " -> " + expo(d.NewExponent),
			fmt.Sprintf("%d -> %d BB", d.OldCost, d.NewCost),
		})
	}
	report.Table(os.Stdout, []string{"routine", "verdict", "growth", "total cost"}, rows)
	fmt.Println()
	fmt.Println("The verdicts come from the cost functions, not the totals: checksum's")
	fmt.Println("total cost shrank 4x purely because v2 ran on smaller batches, and still")
	fmt.Println("diffs clean; checkBatch is flagged by its exponent jump (~1 -> ~2), which")
	fmt.Println("no pair of totals measured on different workloads could establish.")
}

func expo(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("n^%.2f", v)
}
