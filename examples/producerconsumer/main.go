// Producer-consumer (the paper's Figure 2): the defining example of why
// multithreaded programs need the trms metric.
//
// A producer writes n values, one at a time, into a single shared cell; a
// consumer reads each of them. Under the original rms metric the consumer's
// input size is 1 — it only ever reads one distinct memory cell — which
// makes its linearly-growing cost look like an anomaly. The trms metric
// counts every read of a value freshly written by the other thread as new
// (induced) input, so the consumer's input size is n, matching its cost.
//
// Run with: go run ./examples/producerconsumer
package main

import (
	"fmt"
	"log"
	"os"

	"repro/aprof"
	"repro/internal/report"
)

func main() {
	var rows [][]string
	for _, n := range []int{8, 16, 32, 64, 128} {
		prof := aprof.NewProfiler(aprof.Options{})
		m := aprof.NewMachine(aprof.Config{Tools: []aprof.Tool{prof}})

		cell := m.Static(1)
		empty := m.NewSem("empty", 1)
		full := m.NewSem("full", 0)

		err := m.Run(func(th *aprof.Thread) {
			producer := th.Spawn("producer", func(p *aprof.Thread) {
				p.Fn("producer", func() {
					for i := 1; i <= n; i++ {
						p.P(empty)
						p.Store(cell, uint64(i))
						p.V(full)
					}
				})
			})
			consumer := th.Spawn("consumer", func(c *aprof.Thread) {
				c.Fn("consumer", func() {
					sum := uint64(0)
					for i := 0; i < n; i++ {
						c.P(full)
						sum += c.Load(cell)
						c.V(empty)
					}
				})
			})
			th.Join(producer)
			th.Join(consumer)
		})
		if err != nil {
			log.Fatal(err)
		}

		a := prof.Profile().Routine("consumer").Merged()
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(a.SumCost),
			fmt.Sprint(a.SumRMS),
			fmt.Sprint(a.SumTRMS),
		})
	}
	report.Table(os.Stdout, []string{"n", "consumer cost (BB)", "rms", "trms"}, rows)
	fmt.Println()
	fmt.Println("rms stays at 1 no matter how much data flows through the shared cell;")
	fmt.Println("trms equals n, the amount of input the consumer actually processed.")
}
