// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each benchmark either times the measurement the paper times
// (tool overheads for Table 1 / Fig. 14) or re-runs the profiled workload
// behind a figure and reports the figure's headline quantities through
// b.ReportMetric, so `go test -bench=.` regenerates every experimental
// series. The textual tables/plots themselves come from
// cmd/aprof-experiments.
package repro_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"repro/aprof"
	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/guest"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/shadow"
	"repro/internal/telemetry"
	"repro/internal/tools"
	"repro/internal/trace"
	"repro/internal/trace/pipeline"
	"repro/internal/workloads"
)

// benchSize shrinks workload sizes so the full `-bench=.` sweep stays fast.
func benchSize(name string) int {
	s, err := workloads.Get(name)
	if err != nil {
		panic(err)
	}
	return max(s.DefaultSize/2, 4)
}

func runWorkload(b *testing.B, name string, params workloads.Params, tls ...guest.Tool) *guest.Machine {
	b.Helper()
	m, err := workloads.RunByName(name, params, tls...)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// toolUnderTest builds the tool for one Table 1 column; nil means native.
func toolUnderTest(name string) guest.Tool {
	switch name {
	case "native":
		return nil
	case "nulgrind":
		return tools.NewNulgrind()
	case "memcheck":
		return tools.NewMemcheck()
	case "callgrind":
		return tools.NewCallgrind()
	case "helgrind":
		return tools.NewHelgrind()
	case "aprof-rms":
		return core.New(core.Options{RMSOnly: true})
	case "aprof-trms":
		return core.New(core.Options{})
	default:
		panic("unknown tool " + name)
	}
}

var table1Tools = []string{"native", "nulgrind", "memcheck", "callgrind", "helgrind", "aprof-rms", "aprof-trms"}

// BenchmarkTable1 regenerates Table 1: time per run of each OMP2012-style
// benchmark under each tool. Slowdowns are the ratios between the tool rows
// and the native row of the same benchmark.
func BenchmarkTable1(b *testing.B) {
	for _, s := range workloads.Suite("omp2012") {
		for _, tool := range table1Tools {
			b.Run(s.Name+"/"+tool, func(b *testing.B) {
				params := workloads.Params{Threads: 4, Size: benchSize(s.Name)}
				for i := 0; i < b.N; i++ {
					var tls []guest.Tool
					if t := toolUnderTest(tool); t != nil {
						tls = append(tls, t)
					}
					if _, err := workloads.Run(s, params, tls...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig14 regenerates Fig. 14: overhead as a function of the thread
// count (time per run of one representative kernel under each tool).
func BenchmarkFig14(b *testing.B) {
	for _, nt := range []int{1, 2, 4, 8, 16} {
		for _, tool := range []string{"nulgrind", "memcheck", "callgrind", "helgrind", "aprof-rms", "aprof-trms"} {
			b.Run(fmt.Sprintf("threads=%d/%s", nt, tool), func(b *testing.B) {
				params := workloads.Params{Threads: nt, Size: benchSize("360.ilbdc")}
				for i := 0; i < b.N; i++ {
					if _, err := workloads.RunByName("360.ilbdc", params, toolUnderTest(tool)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// profiledRun profiles a workload once per iteration and returns the last
// profile for metric reporting.
func profiledRun(b *testing.B, name string, params workloads.Params, opts core.Options) *core.Profile {
	b.Helper()
	var p *core.Profile
	for i := 0; i < b.N; i++ {
		prof := core.New(opts)
		runWorkload(b, name, params, prof)
		p = prof.Profile()
	}
	return p
}

// BenchmarkFig1 regenerates the Fig. 1 definition examples.
func BenchmarkFig1(b *testing.B) {
	for _, name := range []string{"fig1a", "fig1b"} {
		b.Run(name, func(b *testing.B) {
			p := profiledRun(b, name, workloads.Params{}, core.Options{})
			f := p.Routine("f").Merged()
			b.ReportMetric(float64(f.SumTRMS), "trms_f")
			b.ReportMetric(float64(f.SumRMS), "rms_f")
		})
	}
}

// BenchmarkFig2 regenerates Fig. 2 (producer-consumer).
func BenchmarkFig2(b *testing.B) {
	p := profiledRun(b, "producer-consumer", workloads.Params{Size: 64}, core.Options{})
	cons := p.Routine("consumer").Merged()
	b.ReportMetric(float64(cons.SumTRMS), "trms_consumer")
	b.ReportMetric(float64(cons.SumRMS), "rms_consumer")
}

// BenchmarkFig3 regenerates Fig. 3 (buffered external read).
func BenchmarkFig3(b *testing.B) {
	p := profiledRun(b, "external-read", workloads.Params{Size: 64}, core.Options{})
	er := p.Routine("externalRead").Merged()
	b.ReportMetric(float64(er.SumTRMS), "trms")
	b.ReportMetric(float64(er.InducedExternal), "external")
}

// BenchmarkFig4 regenerates Fig. 4 (mysql_select trend inversion): the
// reported metrics are the power-law exponents of cost against each metric.
func BenchmarkFig4(b *testing.B) {
	p := profiledRun(b, "mysqld", workloads.Params{}, core.Options{})
	sel := p.Routine("mysql_select").Merged()
	if pl, err := fit.FitPowerLaw(report.WorstCase(sel.ByTRMS)); err == nil {
		b.ReportMetric(pl.Exponent, "trms_exponent")
	}
	if pl, err := fit.FitPowerLaw(report.WorstCase(sel.ByRMS)); err == nil {
		b.ReportMetric(pl.Exponent, "rms_exponent")
	}
}

// BenchmarkFig5 regenerates Fig. 5 (vips im_generate).
func BenchmarkFig5(b *testing.B) {
	p := profiledRun(b, "vips", workloads.Params{}, core.Options{})
	img := p.Routine("im_generate").Merged()
	if pl, err := fit.FitPowerLaw(report.WorstCase(img.ByTRMS)); err == nil {
		b.ReportMetric(pl.Exponent, "trms_exponent")
	}
	b.ReportMetric(float64(len(img.ByTRMS)), "trms_points")
	b.ReportMetric(float64(len(img.ByRMS)), "rms_points")
}

// BenchmarkFig6 regenerates Fig. 6 (buf_flush superlinear fit).
func BenchmarkFig6(b *testing.B) {
	p := profiledRun(b, "mysqld", workloads.Params{Threads: 6, Seed: 3}, core.Options{})
	flush := p.Routine("buf_flush_buffered_writes").Merged()
	if pl, err := fit.FitPowerLaw(report.WorstCase(flush.ByTRMS)); err == nil {
		b.ReportMetric(pl.Exponent, "trms_exponent")
	}
}

// BenchmarkFig7 regenerates Fig. 7 (wbuffer richness by input source).
func BenchmarkFig7(b *testing.B) {
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"rms-only", core.Options{RMSOnly: true}},
		{"external-only", core.Options{DisableThreadInduced: true}},
		{"full", core.Options{}},
	} {
		b.Run(v.name, func(b *testing.B) {
			p := profiledRun(b, "vips", workloads.Params{}, v.opts)
			wb := p.Routine("wbuffer_write_thread")
			b.ReportMetric(float64(wb.DistinctTRMS()), "distinct_sizes")
		})
	}
}

// BenchmarkFig8 regenerates Fig. 8 (send_eof workload plots).
func BenchmarkFig8(b *testing.B) {
	p := profiledRun(b, "mysqld", workloads.Params{}, core.Options{})
	eof := p.Routine("Protocol::send_eof")
	b.ReportMetric(float64(eof.DistinctTRMS()), "trms_points")
	b.ReportMetric(float64(eof.DistinctRMS()), "rms_points")
}

// BenchmarkFig9 regenerates Fig. 9 (per-routine induced split).
func BenchmarkFig9(b *testing.B) {
	for _, name := range []string{"mysqld", "vips"} {
		b.Run(name, func(b *testing.B) {
			p := profiledRun(b, name, workloads.Params{}, core.Options{})
			splits := report.PerRoutineInduced(p)
			b.ReportMetric(float64(len(splits)), "routines_with_induced_input")
		})
	}
}

// BenchmarkFig15to19 regenerates the metric figures: one profiled run per
// representative benchmark with richness, volume and induced-split outputs.
func BenchmarkFig15to19(b *testing.B) {
	for _, name := range []string{"dedup", "vips", "fluidanimate", "mysqld", "350.md"} {
		b.Run(name, func(b *testing.B) {
			p := profiledRun(b, name, workloads.Params{Size: benchSize(name)}, core.Options{})
			rich := report.RichnessCurve(p)    // Fig. 15
			vol := report.VolumeCurve(p)       // Fig. 16
			tp, ep := report.InducedSplit(p)   // Fig. 17
			ti := report.ThreadInducedCurve(p) // Fig. 18
			ex := report.ExternalCurve(p)      // Fig. 19
			b.ReportMetric(report.ValueAtPercent(rich, 5), "richness_p5")
			b.ReportMetric(report.ValueAtPercent(vol, 5), "volume_p5")
			b.ReportMetric(tp, "thread_induced_pct")
			b.ReportMetric(ep, "external_pct")
			_ = ti
			_ = ex
		})
	}
}

// --- Ablation benchmarks (DESIGN.md) ---

// BenchmarkAblationNaiveVsTimestamping compares the Fig. 10 naive algorithm
// with the Fig. 11 read/write timestamping algorithm on the same workload.
func BenchmarkAblationNaiveVsTimestamping(b *testing.B) {
	params := workloads.Params{Size: benchSize("350.md"), Threads: 4}
	b.Run("timestamping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runWorkload(b, "350.md", params, core.New(core.Options{}))
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runWorkload(b, "350.md", params, core.NewNaive(core.Options{}))
		}
	})
}

// BenchmarkAblationRenumber measures the cost of aggressive counter
// renumbering (Fig. 13) against a run that never renumbers, on a
// call/kernel-write-heavy workload that actually exercises the counter.
func BenchmarkAblationRenumber(b *testing.B) {
	params := workloads.Params{Size: benchSize("mysqld")}
	for _, v := range []struct {
		name      string
		threshold uint32
	}{{"never", 0}, {"every-1024", 1024}, {"every-256", 256}} {
		b.Run(v.name, func(b *testing.B) {
			var renumbers uint64
			for i := 0; i < b.N; i++ {
				p := core.New(core.Options{RenumberThreshold: v.threshold})
				runWorkload(b, "mysqld", params, p)
				renumbers = p.Renumbers()
			}
			b.ReportMetric(float64(renumbers), "renumbers/run")
		})
	}
}

// BenchmarkAblationShadow compares the paper's three-level shadow memory
// with a flat map under a profiler-like access pattern.
func BenchmarkAblationShadow(b *testing.B) {
	const cells = 1 << 16
	b.Run("three-level", func(b *testing.B) {
		t := shadow.NewTable[uint32]()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := guest.Addr(uint64(i*2654435761) % cells)
			s := t.Slot(a)
			if *s < uint32(i) {
				*s = uint32(i)
			}
		}
	})
	b.Run("flat-map", func(b *testing.B) {
		m := make(map[guest.Addr]uint32)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := guest.Addr(uint64(i*2654435761) % cells)
			if m[a] < uint32(i) {
				m[a] = uint32(i)
			}
		}
	})
}

// BenchmarkAblationTimeslice measures the effect of the fair-scheduler
// quantum on profiling cost and on collected trms richness.
func BenchmarkAblationTimeslice(b *testing.B) {
	for _, ts := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("timeslice=%d", ts), func(b *testing.B) {
			var induced uint64
			for i := 0; i < b.N; i++ {
				p := core.New(core.Options{})
				runWorkload(b, "dedup", workloads.Params{Size: benchSize("dedup"), Timeslice: ts}, p)
				induced = p.Profile().InducedThread
			}
			b.ReportMetric(float64(induced), "thread_induced_accesses")
		})
	}
}

// BenchmarkAblationReplay compares online profiling with record+merge+replay.
func BenchmarkAblationReplay(b *testing.B) {
	params := workloads.Params{Size: benchSize("vips")}
	b.Run("online", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runWorkload(b, "vips", params, core.New(core.Options{}))
		}
	})
	b.Run("record-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec := trace.NewRecorder()
			runWorkload(b, "vips", params, rec)
			if err := trace.Replay(rec.Trace(), 0, core.New(core.Options{})); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkProfilerEventCost isolates the profiler's per-event cost on a
// sequential memory-scan guest (reads dominate real workloads).
func BenchmarkProfilerEventCost(b *testing.B) {
	for _, tool := range []string{"native", "nulgrind", "aprof-rms", "aprof-trms"} {
		b.Run(tool, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var tls []guest.Tool
				if t := toolUnderTest(tool); t != nil {
					tls = append(tls, t)
				}
				m := guest.NewMachine(guest.Config{Tools: tls})
				base := m.Static(4096)
				if err := m.Run(func(th *guest.Thread) {
					th.Fn("scan", func() {
						for j := 0; j < 4096; j++ {
							th.Load(base + guest.Addr(j))
						}
					})
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicAPI exercises the facade end to end (quickstart shape).
func BenchmarkPublicAPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := aprof.ProfileWorkload("merge-sort", aprof.WorkloadParams{Size: 64}, aprof.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if p.Routine("merge_sort") == nil {
			b.Fatal("merge_sort missing")
		}
	}
}

// BenchmarkCachegrind measures the cache-simulation tool (an extension
// beyond the paper's Table 1 columns).
func BenchmarkCachegrind(b *testing.B) {
	params := workloads.Params{Threads: 4, Size: benchSize("351.bwaves")}
	for i := 0; i < b.N; i++ {
		cg := tools.NewCachegrind()
		runWorkload(b, "351.bwaves", params, cg)
		if i == b.N-1 {
			b.ReportMetric(cg.MissRate(), "d1_miss_rate")
		}
	}
}

// BenchmarkISPLWorkloads measures the ISPL VM executing whole programs under
// the profiler.
func BenchmarkISPLWorkloads(b *testing.B) {
	for _, name := range []string{"ispl-quicksort", "ispl-pipeline", "ispl-mapreduce"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runWorkload(b, name, workloads.Params{}, core.New(core.Options{}))
			}
		})
	}
}

// BenchmarkAblationContextSensitivity measures the cost of calling-context
// profiling over flat profiling.
func BenchmarkAblationContextSensitivity(b *testing.B) {
	params := workloads.Params{Size: benchSize("mysqld")}
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runWorkload(b, "mysqld", params, core.New(core.Options{}))
		}
	})
	b.Run("contexts", func(b *testing.B) {
		var contexts int
		for i := 0; i < b.N; i++ {
			p := core.New(core.Options{ContextSensitive: true})
			runWorkload(b, "mysqld", params, p)
			contexts = p.ContextTree().NumContexts()
		}
		b.ReportMetric(float64(contexts), "contexts")
	})
}

// recordedTrace captures one workload execution for the trace-analysis
// benchmarks.
func recordedTrace(b *testing.B, name string, params workloads.Params) *trace.Trace {
	b.Helper()
	rec := trace.NewRecorder()
	runWorkload(b, name, params, rec)
	return rec.Trace()
}

// annotatedTrace captures one workload execution through the streaming
// recorder, so the trace carries stamp annotations and the pipeline's
// no-pre-scan route engages.
func annotatedTrace(b *testing.B, name string, params workloads.Params) *trace.Trace {
	b.Helper()
	var buf bytes.Buffer
	rec := trace.NewStreamRecorder(&buf)
	runWorkload(b, name, params, rec)
	if err := rec.Close(); err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	if !tr.Annotated {
		b.Fatal("streamed trace not annotated")
	}
	return tr
}

// BenchmarkPipelineAnalyze measures offline trace analysis on a recorded
// mysqld execution: the sequential replayer (merge + inline profiler)
// against the parallel pipeline at increasing worker counts, on both an
// unannotated trace (streaming fallback pre-scan) and its stamp-annotated
// twin (no pre-scan). events/s is the throughput over the trace's event
// count; speedups are the ratios against the sequential row. The recorded
// curve lives in BENCH_PIPELINE.json and docs/VALIDATION.md (regenerated
// by cmd/aprof-experiments -run validation).
func BenchmarkPipelineAnalyze(b *testing.B) {
	params := workloads.Params{Size: 2 * benchSize("mysqld"), Threads: 8}
	tr := recordedTrace(b, "mysqld", params)
	ann := annotatedTrace(b, "mysqld", params)
	events := float64(tr.NumEvents())

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FromTrace(tr, 0, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
	for _, route := range []struct {
		name string
		tr   *trace.Trace
	}{{"fallback", tr}, {"annotated", ann}} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("pipeline-%s-%dw", route.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.Analyze(route.tr, pipeline.Options{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkPipelinePhases splits the pipeline's cost into plan
// construction — the O(#segments) assembly from stamp annotations against
// the fallback pre-scan over every event — and the parallelizable analyze
// phase (Plan.Run). The pre-scan is the Amdahl term the annotated route
// deletes.
func BenchmarkPipelinePhases(b *testing.B) {
	tr := recordedTrace(b, "mysqld", workloads.Params{Size: 2 * benchSize("mysqld"), Threads: 8})
	ann := annotatedTrace(b, "mysqld", workloads.Params{Size: 2 * benchSize("mysqld"), Threads: 8})
	b.Run("build-plan-prescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.BuildPlan(tr, 0, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build-plan-annotated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := pipeline.BuildPlan(ann, 0, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if !p.Annotated() {
				b.Fatal("annotated trace missed the fast plan path")
			}
		}
	})
	plan, err := pipeline.BuildPlan(tr, 0, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("run-1w", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("run-maxw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.Run(0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInlineOverhead times one inline-profiled workload run — the
// profiler attached to a live machine — under the batched event ring and
// under per-event dispatch (guest.Config.Unbatched). This is the series
// behind BENCH_INLINE.json; `aprof-experiments -run inline` regenerates the
// JSON with min-of-reps methodology.
func BenchmarkInlineOverhead(b *testing.B) {
	cases := []struct {
		name    string
		size    int
		threads int
	}{
		{"mysqld", 24, 8},
		{"vips", 16, 4},
		{"dedup", 16, 4},
		{"fluidanimate", 16, 4},
	}
	for _, c := range cases {
		for _, mode := range []string{"batched", "unbatched"} {
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				params := workloads.Params{
					Size:      c.size,
					Threads:   c.threads,
					Unbatched: mode == "unbatched",
				}
				for i := 0; i < b.N; i++ {
					prof := core.New(core.Options{})
					runWorkload(b, c.name, params, prof)
				}
			})
		}
	}
}

// BenchmarkCheckOverhead measures the cost of the paper-derived invariant
// checks (core.Options.CheckLevel) on the inline profiler: the same runs as
// BenchmarkInlineOverhead's batched rows at every check level. The
// acceptance bar is <5% for CheckCheap (O(1) per call/return, nothing on
// the memory-event path); CheckDeep additionally pays per renumbering pass
// and a shadow scan at Finish, which the default threshold makes rare.
func BenchmarkCheckOverhead(b *testing.B) {
	cases := []struct {
		name    string
		size    int
		threads int
	}{
		{"mysqld", 24, 8},
		{"vips", 16, 4},
	}
	for _, c := range cases {
		for _, level := range []core.CheckLevel{core.CheckOff, core.CheckCheap, core.CheckDeep} {
			b.Run(c.name+"/"+level.String(), func(b *testing.B) {
				params := workloads.Params{Size: c.size, Threads: c.threads}
				for i := 0; i < b.N; i++ {
					prof := core.New(core.Options{CheckLevel: level})
					runWorkload(b, c.name, params, prof)
					if n := prof.ViolationCount(); n != 0 {
						b.Fatalf("%d invariant violations during benchmark", n)
					}
				}
			})
		}
	}
}

// BenchmarkTelemetryOverhead measures the cost of metrics collection on the
// profiler's hot path: the same profiled runs as BenchmarkInlineOverhead's
// batched rows, with telemetry disabled (nil registry — every metric hook
// no-ops on its nil receiver) and enabled (a live registry attached to the
// machine and the profiler). The observability acceptance bar is <2%
// overhead when enabled; docs/OBSERVABILITY.md records measured numbers.
func BenchmarkTelemetryOverhead(b *testing.B) {
	cases := []struct {
		name    string
		size    int
		threads int
	}{
		{"mysqld", 24, 8},
		{"vips", 16, 4},
	}
	for _, c := range cases {
		for _, mode := range []string{"disabled", "enabled"} {
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var reg *telemetry.Registry
					if mode == "enabled" {
						reg = telemetry.NewRegistry()
					}
					params := workloads.Params{Size: c.size, Threads: c.threads, Telemetry: reg}
					prof := core.New(core.Options{Telemetry: reg})
					runWorkload(b, c.name, params, prof)
				}
			})
		}
	}
}

// BenchmarkSamplingOverhead times one inline-profiled workload run at each
// adaptive-instrumentation tier (core.Options.Sampling): off is the exact
// batched profiler, suppress adds the profile-identical same-cell redundancy
// filter, and burst additionally samples hot routines in periodic
// measurement windows. The off/suppress gap is the filter's net cost or
// win; the off/burst gap is what bounded-error profiles buy.
// cmd/aprof-experiments' inline level records the min-of-reps numbers
// behind BENCH_INLINE.json with the same workloads at full size.
func BenchmarkSamplingOverhead(b *testing.B) {
	cases := []struct {
		name    string
		size    int
		threads int
	}{
		{"mysqld", 24, 8},
		{"dedup", 16, 4},
		{"fluidanimate", 16, 4},
	}
	for _, c := range cases {
		for _, tier := range []core.SamplingTier{core.SamplingOff, core.SamplingSuppress, core.SamplingBurst} {
			b.Run(c.name+"/"+tier.String(), func(b *testing.B) {
				params := workloads.Params{Size: c.size, Threads: c.threads}
				for i := 0; i < b.N; i++ {
					prof := core.New(core.Options{Sampling: tier})
					runWorkload(b, c.name, params, prof)
				}
			})
		}
	}
}

// BenchmarkObsOverhead measures what an idle HTTP observability server
// (-http with nobody scraping) costs a profiled run: the same telemetry-
// enabled runs as BenchmarkTelemetryOverhead, with and without an
// obs.Server bound to a loopback port. Nothing on the profiler's hot path
// talks to the server — handlers read the shared registry only when
// scraped — so the acceptance bar is <1% overhead beyond telemetry itself;
// docs/OBSERVABILITY.md records measured numbers.
func BenchmarkObsOverhead(b *testing.B) {
	cases := []struct {
		name    string
		size    int
		threads int
	}{
		{"mysqld", 24, 8},
		{"vips", 16, 4},
	}
	for _, c := range cases {
		for _, mode := range []string{"off", "idle-server"} {
			b.Run(c.name+"/"+mode, func(b *testing.B) {
				reg := telemetry.NewRegistry()
				if mode == "idle-server" {
					srv, err := obs.Start(obs.Options{Registry: reg, Component: "bench", Log: io.Discard})
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					params := workloads.Params{Size: c.size, Threads: c.threads, Telemetry: reg}
					prof := core.New(core.Options{Telemetry: reg})
					runWorkload(b, c.name, params, prof)
				}
			})
		}
	}
}
